//! `coschedule::tune` — an online autotuner that learns the best solver
//! per instance.
//!
//! The paper's experimental section is one large bake-off: every legend
//! strategy runs on every instance and the figures report who wins where.
//! This module is the production version of that insight: instead of
//! re-running the whole [`Portfolio`] forever, an [`Auto`] solver *learns*
//! which member wins on which kind of instance and converges to running
//! only the learned front-runner (plus an epsilon of challengers that keep
//! the learned table honest).
//!
//! Pieces, in dataflow order:
//!
//! * [`Signature`] — a small deterministic fingerprint of an
//!   [`Instance`]: bucketed size, platform capabilities, and quantiles of
//!   the Theorem-3 weight distribution read straight off the cached
//!   [`EvalSet`](crate::eval::EvalSet) (no extra model evaluation).
//!   Instances with the same signature are assumed to have the same
//!   winner; the buckets are coarse on purpose so the single-application
//!   churn of a [`Session`](crate::session::Session) rarely moves an
//!   instance out of its bucket.
//! * [`History`] — per-`(signature, member)` observations: makespan ratio
//!   against the best member of the same round, win counts,
//!   [`EvalStats`] kernel work, and per-member wall time (the cost side
//!   of the quality/cost tradeoff). Wall time is **recorded but never
//!   consulted by the policy** — selections stay bit-deterministic.
//! * The policy — *explore then commit*: a fresh bucket runs the full
//!   portfolio for [`TuneConfig::explore_rounds`] rounds (bit-identical
//!   to [`Portfolio::solve_detailed`] on the same seed, because members
//!   draw the same [`SolveCtx::child`] streams); afterwards only the
//!   learned leader runs, with one challenger added every
//!   [`TuneConfig::challenger_period`]-th committed solve. Ties break
//!   through a seeded mix of the [`SolveCtx`] seed, never through
//!   `HashMap` iteration or wall time.
//! * [`Auto`] — the policy as a [`Solver`], registered as `"auto"` in the
//!   [`solver::by_name`](crate::solver::by_name) registry, so it works
//!   everywhere a solver name works today: `solve_batch`,
//!   [`Session::resolve_by_name`](crate::session::Session::resolve_by_name)
//!   (the session shares one history across incremental re-solves), and
//!   `cosched serve` (one tuner per shard).
//!
//! # Example
//!
//! ```
//! use coschedule::model::{Application, Platform};
//! use coschedule::solver::{Instance, SolveCtx};
//! use coschedule::tune::{Auto, TuneConfig};
//! use coschedule::Solver;
//!
//! let instance = Instance::new(
//!     vec![
//!         Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
//!         Application::new("BT", 2.10e11, 0.05, 0.829, 7.31e-3),
//!     ],
//!     Platform::taihulight(),
//! )
//! .unwrap();
//!
//! let auto = Auto::with_config(TuneConfig {
//!     explore_rounds: 2,
//!     challenger_period: 4,
//!     window: 0,
//! });
//! // First solves explore (full portfolio), later solves run the leader.
//! for _ in 0..4 {
//!     auto.solve(&instance, &mut SolveCtx::seeded(42)).unwrap();
//! }
//! let stats = auto.tuner_stats();
//! assert_eq!(stats.explored, 2);
//! assert_eq!(stats.committed, 2);
//! assert!(stats.member_solves < 4 * auto.members().len() as u64);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::algo::Outcome;
use crate::error::Result;
use crate::eval::EvalStats;
use crate::solver::{child_seed, Instance, Portfolio, SolveCtx, Solver};

/// Salt mixed into the seeded tie-breaks so tuner decisions never reuse a
/// member's own child-seed stream.
const TIE_SALT: u64 = 0x70BE_7E57_0C05_4E4E;

/// Knobs of the explore-then-commit policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneConfig {
    /// Comparative (full-portfolio) rounds a fresh signature bucket runs
    /// before committing to its leader. Must be ≥ 1 for the tuner to ever
    /// learn anything; 0 commits blind (leader = seeded tie-break only).
    pub explore_rounds: u64,
    /// Every `challenger_period`-th committed solve also runs one
    /// challenger next to the leader (0 disables challengers entirely).
    /// The challenger keeps the learned table honest: if the workload
    /// drifts and a different member starts winning, its ratio statistics
    /// improve until it takes the leadership.
    pub challenger_period: u64,
    /// Effective observation window for leader selection, as a count of
    /// recent comparative observations (0 = unbounded, the default).
    ///
    /// With `window = W > 0` every recorded ratio is folded into
    /// exponentially-decayed accumulators with decay factor `1 − 1/W`
    /// (so the last ~W observations dominate), and the leader is chosen
    /// by the *decayed* mean ratio instead of the lifetime mean. Under a
    /// drifting workload the lifetime mean can keep a stale leader in
    /// place long after a different member started winning — the window
    /// forgets the old regime at a rate the caller controls. With the
    /// default `window = 0` the decayed accumulators are still recorded
    /// but never consulted, so selections are bit-identical to the
    /// unbounded policy.
    pub window: u64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self {
            explore_rounds: 4,
            challenger_period: 4,
            window: 0,
        }
    }
}

impl TuneConfig {
    /// The per-observation decay factor the window implies: `1 − 1/W`
    /// for `window = W > 0`, or 1 (no forgetting) when unbounded.
    pub fn decay(&self) -> f64 {
        if self.window == 0 {
            1.0
        } else {
            1.0 - 1.0 / self.window as f64
        }
    }
}

/// Lifetime counters of one tuner, exposed through
/// [`SessionStats`](crate::session::SessionStats) and the serve `metrics`
/// op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TunerStats {
    /// Solves answered by a full-portfolio explore round.
    pub explored: u64,
    /// Solves answered by the committed leader (with or without a
    /// challenger).
    pub committed: u64,
    /// Committed rounds in which the challenger strictly beat the leader.
    pub challenger_wins: u64,
    /// Total member solves executed — the denominator of the "solves
    /// avoided vs always-Portfolio" comparison (`always-Portfolio` costs
    /// `members × requests`).
    pub member_solves: u64,
}

impl TunerStats {
    /// Adds `other`'s counters into `self` (cross-shard aggregation).
    pub fn merge(&mut self, other: TunerStats) {
        self.explored += other.explored;
        self.committed += other.committed;
        self.challenger_wins += other.challenger_wins;
        self.member_solves += other.member_solves;
    }
}

/// `⌊log2 x⌋` for positive finite `x`, read from the IEEE-754 exponent
/// bits — exact, branch-light, and free of libm (so bucket boundaries can
/// never drift between platforms or optimisation levels). Non-positive
/// and non-finite inputs collapse to `i32::MIN` (one shared "degenerate"
/// bucket).
fn log2_bucket(x: f64) -> i32 {
    // NaN and non-positive values fail the first test, infinities the
    // second: one shared "degenerate" bucket for all of them.
    if x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !x.is_finite() {
        return i32::MIN;
    }
    let exponent = ((x.to_bits() >> 52) & 0x7ff) as i32;
    if exponent == 0 {
        // Subnormals: everything below 2^-1022 lands in one bucket.
        -1023
    } else {
        exponent - 1023
    }
}

/// Deterministic fingerprint of an instance: which signature bucket its
/// tuning observations accumulate under.
///
/// Derived from the cached [`EvalSet`](crate::eval::EvalSet) only —
/// building a signature performs no model evaluation and allocates one
/// scratch copy of the weight column (for the quantile sort). All fields
/// are coarse integer buckets, so the session's single-application patches
/// (an app joins, leaves, or re-scales its work) usually keep an instance
/// in its bucket and the learned leader stays applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    /// `⌊log2 n⌋` — instance size class.
    pub n: i32,
    /// `⌊log2 p⌋` — processor count class.
    pub processors: i32,
    /// `⌊log2 Cs⌋` — LLC size class (bytes).
    pub cache: i32,
    /// `round(4α)` — power-law exponent class.
    pub alpha: i32,
    /// `⌊log4(q75/q25)⌋` of the Theorem-3 weights — heterogeneity of the
    /// interquartile cost distribution (0 = the middle half of the
    /// applications is within a factor 4 of uniform). Factor-4 classes,
    /// coarser than the size classes, and deliberately built from the
    /// *interquartile* range: the extremes (min, max) move with every
    /// single-application mutation, the quartiles rarely do, and a bucket
    /// that flips on profile churn would throw the learned leader away
    /// exactly when it is most useful.
    pub spread: i32,
}

impl Signature {
    /// Fingerprints `instance` (see the type docs for the bucket scheme).
    pub fn of(instance: &Instance) -> Signature {
        let eval = instance.eval();
        let platform = instance.platform();
        let mut weights: Vec<f64> = eval.weights().to_vec();
        weights.sort_by(f64::total_cmp);
        let quantile = |f: f64| weights[(f * (weights.len() - 1) as f64) as usize];
        let (q25, q75) = (quantile(0.25), quantile(0.75));
        Signature {
            n: log2_bucket(instance.len() as f64),
            processors: log2_bucket(platform.processors),
            cache: log2_bucket(platform.cache_size),
            alpha: (platform.alpha * 4.0).round() as i32,
            // `⌊log2(x)/2⌋ == ⌊⌊log2 x⌋/2⌋` for every positive x, so the
            // exact exponent-bit bucket composes into an exact log4 one.
            spread: log2_bucket(q75 / q25).div_euclid(2),
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n=2^{} p=2^{} Cs=2^{} α/4={} spread=4^{}",
            self.n, self.processors, self.cache, self.alpha, self.spread
        )
    }
}

/// Accumulated observations of one member solver inside one signature
/// bucket.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemberObs {
    /// Comparative observations recorded (rounds in which this member ran
    /// alongside at least one other).
    pub observations: u64,
    /// Rounds in which this member's makespan was the round's best.
    pub wins: u64,
    /// `Σ makespan / round_best` — 1.0 means "always the winner".
    pub ratio_sum: f64,
    /// Evaluation-engine work this member performed in this bucket.
    pub eval: EvalStats,
    /// Wall time this member spent solving in this bucket. Reported (the
    /// cost signal of the learned table); never consulted by the policy.
    pub wall: Duration,
    /// Exponentially-decayed observation weight (the denominator of
    /// [`Self::windowed_mean_ratio`]); equals `observations` when the
    /// config's window is unbounded (decay 1).
    pub recent_obs: f64,
    /// Exponentially-decayed ratio accumulator (the numerator of
    /// [`Self::windowed_mean_ratio`]).
    pub recent_ratio_sum: f64,
}

impl MemberObs {
    /// Mean makespan ratio against the per-round best (`+∞` when the
    /// member was never observed, so unobserved members cannot lead).
    pub fn mean_ratio(&self) -> f64 {
        if self.observations == 0 {
            f64::INFINITY
        } else {
            self.ratio_sum / self.observations as f64
        }
    }

    /// Windowed mean ratio: like [`Self::mean_ratio`] but over the
    /// exponentially-decayed accumulators, so recent observations
    /// dominate. Consulted by leader selection only when
    /// [`TuneConfig::window`] is non-zero.
    pub fn windowed_mean_ratio(&self) -> f64 {
        if self.recent_obs > 0.0 {
            self.recent_ratio_sum / self.recent_obs
        } else {
            f64::INFINITY
        }
    }

    fn record(&mut self, ratio: f64, won: bool, eval: EvalStats, wall: Duration, decay: f64) {
        self.observations += 1;
        self.ratio_sum += ratio;
        self.recent_obs = self.recent_obs * decay + 1.0;
        self.recent_ratio_sum = self.recent_ratio_sum * decay + ratio;
        self.wins += u64::from(won);
        self.eval.merge(eval);
        self.wall += wall;
    }
}

/// One signature bucket's history: per-member observations plus the
/// explore/commit progress counters.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketHistory {
    /// Comparative rounds recorded (explore rounds + challenger rounds).
    pub rounds: u64,
    /// Committed-phase solves served from this bucket.
    pub committed: u64,
    /// Per-member observations, aligned with [`Auto::members`] order.
    pub members: Vec<MemberObs>,
}

impl BucketHistory {
    fn new(members: usize) -> Self {
        Self {
            rounds: 0,
            committed: 0,
            members: vec![MemberObs::default(); members],
        }
    }

    /// The member the committed phase runs: minimum mean ratio, ties
    /// broken by a seeded mix (never by map order or timing) and finally
    /// by member index, so the choice is a pure function of
    /// `(history, seed)`.
    pub fn leader(&self, seed: u64) -> usize {
        self.leader_with(false, seed)
    }

    /// [`Self::leader`] with an explicit choice of ranking statistic:
    /// `windowed = true` ranks by the exponentially-decayed mean ratio
    /// (the [`TuneConfig::window`] policy), `false` by the lifetime mean.
    pub fn leader_with(&self, windowed: bool, seed: u64) -> usize {
        let score = |i: usize| {
            if windowed {
                self.members[i].windowed_mean_ratio()
            } else {
                self.members[i].mean_ratio()
            }
        };
        (0..self.members.len())
            .min_by(|&a, &b| {
                score(a)
                    .total_cmp(&score(b))
                    .then_with(|| tie_mix(seed, a).cmp(&tie_mix(seed, b)))
                    .then(a.cmp(&b))
            })
            .expect("bucket has at least one member")
    }

    /// The challenger of a committed round: the least-observed non-leader
    /// (so coverage spreads), ties broken by a round-salted seeded mix so
    /// consecutive challenger rounds cycle through different members even
    /// under a constant request seed.
    pub fn challenger(&self, leader: usize, seed: u64) -> usize {
        (0..self.members.len())
            .filter(|&i| i != leader)
            .min_by(|&a, &b| {
                self.members[a]
                    .observations
                    .cmp(&self.members[b].observations)
                    .then_with(|| {
                        tie_mix(seed ^ self.rounds, a).cmp(&tie_mix(seed ^ self.rounds, b))
                    })
                    .then(a.cmp(&b))
            })
            .expect("committed rounds only run with ≥ 2 members")
    }

    /// Records one comparative round: `samples` holds `(member index,
    /// makespan, eval stats, wall)` for every member that produced an
    /// outcome this round. Ratios are taken against the round's best
    /// makespan; every sample at the best (ties included) counts a win.
    fn observe(&mut self, samples: &[(usize, f64, EvalStats, Duration)], decay: f64) {
        debug_assert!(samples.len() >= 2, "a comparative round needs ≥ 2 members");
        let best = samples
            .iter()
            .map(|&(_, makespan, _, _)| makespan)
            .fold(f64::INFINITY, f64::min);
        for &(index, makespan, eval, wall) in samples {
            // Degenerate best (0 or ±∞) would poison the ratio; fall back
            // to the neutral observation 1.0.
            let ratio = if best > 0.0 && best.is_finite() {
                makespan / best
            } else {
                1.0
            };
            self.members[index].record(ratio, makespan == best, eval, wall, decay);
        }
        self.rounds += 1;
    }
}

/// Seeded tie-break mix for member `index` (salted so it can never collide
/// with a member's own RNG stream).
fn tie_mix(seed: u64, index: usize) -> u64 {
    child_seed(seed ^ TIE_SALT, index as u64, 0)
}

/// The tuner's learned state: per-signature buckets plus lifetime
/// counters. Owned behind a [`Mutex`] by [`Auto`]; obtain a read snapshot
/// through [`Auto::table`] / [`Auto::tuner_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct History {
    config: TuneConfig,
    buckets: BTreeMap<Signature, BucketHistory>,
    stats: TunerStats,
}

impl History {
    fn new(config: TuneConfig) -> Self {
        Self {
            config,
            buckets: BTreeMap::new(),
            stats: TunerStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TunerStats {
        self.stats
    }

    /// The knobs this history was built with.
    pub fn config(&self) -> TuneConfig {
        self.config
    }

    /// The buckets in deterministic (signature) order.
    pub fn buckets(&self) -> impl Iterator<Item = (&Signature, &BucketHistory)> {
        self.buckets.iter()
    }

    /// Reassembles a history from snapshot parts ([`crate::persist`]).
    pub(crate) fn from_parts(
        config: TuneConfig,
        buckets: BTreeMap<Signature, BucketHistory>,
        stats: TunerStats,
    ) -> Self {
        Self {
            config,
            buckets,
            stats,
        }
    }
}

/// One row of the learned table ([`Auto::table`]): a signature bucket with
/// its per-member statistics, ready for printing (`cosched tune`).
#[derive(Debug, Clone, PartialEq)]
pub struct BucketReport {
    /// The bucket's signature.
    pub signature: Signature,
    /// Comparative rounds recorded.
    pub rounds: u64,
    /// Committed-phase solves served.
    pub committed: u64,
    /// Index (into [`BucketReport::members`]) of the current leader under
    /// the neutral tie-break seed 0.
    pub leader: usize,
    /// `(member name, observations)` in member order.
    pub members: Vec<(String, MemberObs)>,
}

/// What one [`Auto::solve`] decided to run, resolved under the history
/// lock and executed outside it.
enum Decision {
    Explore,
    Committed {
        leader: usize,
        challenger: Option<usize>,
    },
}

/// The autotuning meta-solver: a [`Portfolio`] that learns which member to
/// run (registered as `"auto"`).
///
/// `Auto` carries its [`History`] behind a mutex, so one instance can be
/// shared (e.g. [`Session`](crate::session::Session) holds one per
/// session; `cosched serve` therefore gets one per shard) and keeps
/// learning across solves. A fresh `Auto` from the registry starts with an
/// empty history — the learning lives exactly as long as whoever owns the
/// solver instance.
///
/// Determinism: given the same history state, instance, and
/// [`SolveCtx`] seed, the selection and the outcome are bit-identical —
/// explore rounds reproduce [`Portfolio::solve_detailed`] exactly (same
/// [`SolveCtx::child`] streams), committed rounds run members on the same
/// child streams they would draw inside the portfolio. Wall-clock timing
/// is recorded in the history but never feeds back into a decision.
pub struct Auto {
    portfolio: Portfolio,
    names: Vec<String>,
    history: Mutex<History>,
}

impl Default for Auto {
    fn default() -> Self {
        Self::new()
    }
}

impl Auto {
    /// An autotuner over the full registry ([`crate::solver::all`]) with
    /// the default [`TuneConfig`].
    pub fn new() -> Self {
        Self::with_config(TuneConfig::default())
    }

    /// An autotuner over the full registry with explicit knobs.
    pub fn with_config(config: TuneConfig) -> Self {
        Self::over(Portfolio::new(crate::solver::all()), config)
    }

    /// An autotuner over an explicit member portfolio.
    ///
    /// # Panics
    /// If the portfolio has no members (there would be nothing to learn).
    pub fn over(portfolio: Portfolio, config: TuneConfig) -> Self {
        assert!(
            !portfolio.members().is_empty(),
            "an autotuner needs at least one member solver"
        );
        let names = portfolio.members().iter().map(|m| m.name()).collect();
        Auto {
            portfolio,
            names,
            history: Mutex::new(History::new(config)),
        }
    }

    /// An autotuner over the full registry resuming a restored history
    /// ([`crate::persist`]). The caller has already validated that the
    /// history's member columns line up with the registry order.
    pub(crate) fn with_history(history: History) -> Self {
        let portfolio = Portfolio::new(crate::solver::all());
        let names = portfolio.members().iter().map(|m| m.name()).collect();
        Auto {
            portfolio,
            names,
            history: Mutex::new(history),
        }
    }

    /// A deep copy of the learned state, for snapshotting
    /// ([`crate::persist`]).
    pub(crate) fn history_clone(&self) -> History {
        self.lock().clone()
    }

    /// The member solvers, in observation order.
    pub fn members(&self) -> &[Box<dyn Solver>] {
        self.portfolio.members()
    }

    /// Member names, aligned with [`BucketHistory::members`].
    pub fn member_names(&self) -> &[String] {
        &self.names
    }

    /// Snapshot of the lifetime counters.
    pub fn tuner_stats(&self) -> TunerStats {
        self.lock().stats
    }

    /// Snapshot of the learned table, in deterministic signature order.
    pub fn table(&self) -> Vec<BucketReport> {
        let history = self.lock();
        let windowed = history.config.window > 0;
        history
            .buckets
            .iter()
            .map(|(&signature, bucket)| BucketReport {
                signature,
                rounds: bucket.rounds,
                committed: bucket.committed,
                leader: bucket.leader_with(windowed, 0),
                members: self
                    .names
                    .iter()
                    .cloned()
                    .zip(bucket.members.iter().copied())
                    .collect(),
            })
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, History> {
        // The tuner holds the lock only for bookkeeping (never across a
        // member solve), so a poisoned lock can only mean a panic inside
        // plain counter arithmetic — propagating it helps nobody.
        match self.history.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Resolves what to run for `sig` under the current history.
    fn decide(&self, sig: Signature, seed: u64) -> Decision {
        let mut history = self.lock();
        let config = history.config;
        let members = self.names.len();
        let bucket = history
            .buckets
            .entry(sig)
            .or_insert_with(|| BucketHistory::new(members));
        if bucket.rounds < config.explore_rounds || members == 1 {
            return Decision::Explore;
        }
        let leader = bucket.leader_with(config.window > 0, seed);
        let challenger = (config.challenger_period > 0
            && (bucket.committed + 1).is_multiple_of(config.challenger_period))
        .then(|| bucket.challenger(leader, seed));
        Decision::Committed { leader, challenger }
    }

    /// Runs member `index` exactly as the portfolio would: same child
    /// stream, timed.
    fn run_member(
        &self,
        index: usize,
        instance: &Instance,
        ctx: &SolveCtx,
    ) -> (Result<Outcome>, Duration) {
        let mut child = ctx.child(index as u64);
        let started = Instant::now();
        let result = self.portfolio.members()[index].solve(instance, &mut child);
        (result, started.elapsed())
    }

    /// One full-portfolio round: solve, record every successful member,
    /// return the round's best outcome.
    fn explore(&self, sig: Signature, instance: &Instance, ctx: &mut SolveCtx) -> Result<Outcome> {
        let report = self.portfolio.solve_detailed(instance, ctx)?;
        let samples: Vec<(usize, f64, EvalStats, Duration)> = report
            .members
            .iter()
            .enumerate()
            .filter_map(|(i, m)| {
                m.result
                    .as_ref()
                    .ok()
                    .map(|o| (i, o.makespan, o.eval_stats, m.elapsed))
            })
            .collect();
        let mut history = self.lock();
        let decay = history.config.decay();
        let bucket = history
            .buckets
            .get_mut(&sig)
            .expect("decide() created the bucket");
        if samples.len() >= 2 {
            bucket.observe(&samples, decay);
        } else {
            // Not comparative (≤ 1 member succeeded); count the round so a
            // pathological bucket still leaves the explore phase.
            bucket.rounds += 1;
        }
        history.stats.explored += 1;
        history.stats.member_solves += report.members.len() as u64;
        Ok(report.outcome)
    }

    /// One committed round: leader (plus optionally one challenger), best
    /// of the two returned. Falls back to a full explore round if the
    /// leader fails.
    fn committed(
        &self,
        sig: Signature,
        leader: usize,
        challenger: Option<usize>,
        instance: &Instance,
        ctx: &mut SolveCtx,
    ) -> Result<Outcome> {
        let (leader_result, leader_wall) = self.run_member(leader, instance, ctx);
        let leader_outcome = match leader_result {
            Ok(outcome) => outcome,
            // The learned leader failing is pathological (members that
            // fail rank last); answer the request with the full portfolio
            // and learn from the round like any explore. The failed solve
            // still executed — count it, or the "solves avoided" metric
            // would overstate the savings.
            Err(_) => {
                self.lock().stats.member_solves += 1;
                return self.explore(sig, instance, ctx);
            }
        };
        let challenge = challenger.and_then(|index| {
            let (result, wall) = self.run_member(index, instance, ctx);
            result.ok().map(|outcome| (index, outcome, wall))
        });

        let mut history = self.lock();
        let decay = history.config.decay();
        let bucket = history
            .buckets
            .get_mut(&sig)
            .expect("decide() created the bucket");
        bucket.committed += 1;
        let mut best = leader_outcome.clone();
        let mut challenger_won = false;
        if let Some((index, outcome, wall)) = challenge {
            bucket.observe(
                &[
                    (
                        leader,
                        leader_outcome.makespan,
                        leader_outcome.eval_stats,
                        leader_wall,
                    ),
                    (index, outcome.makespan, outcome.eval_stats, wall),
                ],
                decay,
            );
            if outcome.makespan < leader_outcome.makespan {
                best = outcome;
                challenger_won = true;
            }
        }
        history.stats.committed += 1;
        history.stats.challenger_wins += u64::from(challenger_won);
        history.stats.member_solves += 1 + u64::from(challenger.is_some());
        Ok(best)
    }
}

impl Solver for Auto {
    fn name(&self) -> String {
        "auto".to_string()
    }

    fn is_randomized(&self) -> bool {
        // The seed steers both the members and the tie-breaks.
        true
    }

    fn solve(&self, instance: &Instance, ctx: &mut SolveCtx) -> Result<Outcome> {
        let sig = Signature::of(instance);
        match self.decide(sig, ctx.seed()) {
            Decision::Explore => self.explore(sig, instance, ctx),
            Decision::Committed { leader, challenger } => {
                self.committed(sig, leader, challenger, instance, ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::Strategy;
    use crate::model::{Application, Platform};
    use crate::solver;

    fn apps() -> Vec<Application> {
        vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3),
            Application::new("LU", 1.52e11, 0.07, 0.750, 1.51e-3),
        ]
    }

    fn instance() -> Instance {
        Instance::new(apps(), Platform::taihulight()).unwrap()
    }

    #[test]
    fn log2_buckets_are_exact() {
        assert_eq!(log2_bucket(1.0), 0);
        assert_eq!(log2_bucket(1.5), 0);
        assert_eq!(log2_bucket(2.0), 1);
        assert_eq!(log2_bucket(6.0), 2);
        assert_eq!(log2_bucket(8.0), 3);
        assert_eq!(log2_bucket(0.5), -1);
        assert_eq!(log2_bucket(0.0), i32::MIN);
        assert_eq!(log2_bucket(-3.0), i32::MIN);
        assert_eq!(log2_bucket(f64::INFINITY), i32::MIN);
        assert_eq!(log2_bucket(f64::NAN), i32::MIN);
    }

    /// The six NPB Table-2 applications (the workload the serve layer and
    /// `cosched tune` replay), hard-coded because the core crate cannot
    /// depend on `workloads`.
    fn npb6() -> Vec<Application> {
        vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.05, 0.829, 7.31e-3),
            Application::new("LU", 1.52e11, 0.05, 0.750, 1.51e-3),
            Application::new("SP", 1.38e11, 0.05, 0.762, 1.51e-2),
            Application::new("MG", 1.23e10, 0.05, 0.540, 2.62e-2),
            Application::new("FT", 1.65e10, 0.05, 0.582, 1.78e-2),
        ]
    }

    #[test]
    fn signatures_are_stable_under_small_churn() {
        let base = Signature::of(&Instance::new(npb6(), Platform::taihulight()).unwrap());
        // Re-scaling any single application's work by 25% must not move
        // the NPB-6 instance out of its bucket (the committed leader
        // stays valid across the profile churn a session sees).
        for i in 0..6 {
            for factor in [0.8, 1.25] {
                let mut perturbed = npb6();
                perturbed[i].work *= factor;
                let sig = Signature::of(&Instance::new(perturbed, Platform::taihulight()).unwrap());
                assert_eq!(base, sig, "app {i} × {factor} moved the bucket");
            }
        }
        // Doubling the platform moves it (different processor class).
        let grown = Signature::of(
            &Instance::new(npb6(), Platform::taihulight().with_processors(512.0)).unwrap(),
        );
        assert_ne!(base, grown);
    }

    #[test]
    fn explore_rounds_match_the_portfolio_bit_for_bit() {
        let inst = instance();
        let auto = Auto::new();
        let portfolio = Portfolio::new(solver::all());
        for seed in [0u64, 7, 42] {
            let a = auto.solve(&inst, &mut SolveCtx::seeded(seed)).unwrap();
            let p = portfolio.solve(&inst, &mut SolveCtx::seeded(seed)).unwrap();
            assert_eq!(a, p, "explore round diverged from the portfolio");
        }
    }

    #[test]
    fn converges_to_the_winner_and_stops_running_everyone() {
        let inst = instance();
        let config = TuneConfig {
            explore_rounds: 2,
            challenger_period: 3,
            window: 0,
        };
        let auto = Auto::with_config(config);
        let portfolio = Portfolio::new(solver::all());
        let expected = portfolio
            .solve(&inst, &mut SolveCtx::seeded(9))
            .unwrap()
            .makespan;
        for _ in 0..12 {
            let outcome = auto.solve(&inst, &mut SolveCtx::seeded(9)).unwrap();
            assert_eq!(
                outcome.makespan.to_bits(),
                expected.to_bits(),
                "auto must keep answering with the portfolio-best makespan"
            );
        }
        let stats = auto.tuner_stats();
        assert_eq!(stats.explored, 2);
        assert_eq!(stats.committed, 10);
        // 2 explore rounds × 11 members + 10 committed solves + ⌊…⌋
        // challenger add-ons — far fewer than 12 × 11.
        assert!(stats.member_solves < 12 * auto.members().len() as u64 / 2);
        let table = auto.table();
        assert_eq!(table.len(), 1, "one bucket for one instance");
        assert_eq!(table[0].rounds as usize, 2 + 10 / 3);
        assert_eq!(table[0].committed, 10);
    }

    /// Everything decision-relevant in a table snapshot — i.e. all of it
    /// except the wall times, which vary run to run by design.
    #[allow(clippy::type_complexity)]
    fn decisions(
        table: &[BucketReport],
    ) -> Vec<(
        Signature,
        u64,
        u64,
        usize,
        Vec<(String, u64, u64, u64, EvalStats)>,
    )> {
        table
            .iter()
            .map(|b| {
                (
                    b.signature,
                    b.rounds,
                    b.committed,
                    b.leader,
                    b.members
                        .iter()
                        .map(|(n, o)| {
                            (
                                n.clone(),
                                o.observations,
                                o.wins,
                                o.ratio_sum.to_bits(),
                                o.eval,
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn selections_are_deterministic_and_thread_independent() {
        let inst = instance();
        let run = |threads: usize| {
            let auto = Auto::with_config(TuneConfig {
                explore_rounds: 2,
                challenger_period: 2,
                window: 0,
            });
            let mut makespans = Vec::new();
            for step in 0..8u64 {
                let mut ctx = SolveCtx::seeded(step).with_threads(threads);
                makespans.push(auto.solve(&inst, &mut ctx).unwrap().makespan.to_bits());
            }
            (makespans, auto.tuner_stats(), decisions(&auto.table()))
        };
        let serial = run(1);
        let rerun = run(1);
        let parallel = run(4);
        // Wall times (excluded from `decisions`) differ run to run;
        // everything decision-relevant must not — across reruns and
        // across thread counts alike.
        assert_eq!(serial, rerun, "same trace + seeds must replay exactly");
        assert_eq!(serial, parallel, "thread count must not change results");
    }

    #[test]
    fn challengers_keep_observing_non_leaders() {
        let inst = instance();
        let auto = Auto::with_config(TuneConfig {
            explore_rounds: 1,
            challenger_period: 1, // every committed round runs a challenger
            window: 0,
        });
        for _ in 0..30 {
            auto.solve(&inst, &mut SolveCtx::seeded(3)).unwrap();
        }
        let table = auto.table();
        let bucket = &table[0];
        // One explore round + 29 challenger rounds: every member has been
        // observed more than once (challengers cycle by least-observed).
        for (name, obs) in &bucket.members {
            assert!(
                obs.observations >= 2,
                "{name} starved: {} observations",
                obs.observations
            );
        }
        // Challenger rounds never made the answer worse than the leader's.
        let stats = auto.tuner_stats();
        assert_eq!(stats.explored, 1);
        assert_eq!(stats.committed, 29);
        assert_eq!(stats.member_solves, 11 + 29 * 2);
    }

    #[test]
    fn zero_challenger_period_disables_challengers() {
        let inst = instance();
        let auto = Auto::with_config(TuneConfig {
            explore_rounds: 1,
            challenger_period: 0,
            window: 0,
        });
        for _ in 0..10 {
            auto.solve(&inst, &mut SolveCtx::seeded(5)).unwrap();
        }
        let stats = auto.tuner_stats();
        assert_eq!(stats.member_solves, 11 + 9);
        assert_eq!(stats.challenger_wins, 0);
    }

    #[test]
    fn single_member_portfolio_always_explores_but_runs_one_solve() {
        let inst = instance();
        let auto = Auto::over(
            Portfolio::new(vec![Strategy::Fair.to_solver()]),
            TuneConfig::default(),
        );
        for _ in 0..5 {
            auto.solve(&inst, &mut SolveCtx::seeded(1)).unwrap();
        }
        assert_eq!(auto.tuner_stats().member_solves, 5);
    }

    #[test]
    fn wall_time_is_recorded_but_never_decides() {
        let inst = instance();
        let auto = Auto::with_config(TuneConfig {
            explore_rounds: 1,
            challenger_period: 0,
            window: 0,
        });
        auto.solve(&inst, &mut SolveCtx::seeded(2)).unwrap();
        let table = auto.table();
        let total_wall: Duration = table[0].members.iter().map(|(_, o)| o.wall).sum();
        assert!(total_wall > Duration::ZERO, "explore must record wall time");
    }

    #[test]
    fn windowed_leader_adapts_to_drift_while_unbounded_stays() {
        let mut bucket = BucketHistory::new(2);
        let decay = TuneConfig {
            window: 4,
            ..TuneConfig::default()
        }
        .decay();
        let round = |winner: usize| {
            let mut samples = [
                (0usize, 1.5, EvalStats::default(), Duration::ZERO),
                (1usize, 1.5, EvalStats::default(), Duration::ZERO),
            ];
            samples[winner].1 = 1.0;
            samples
        };
        // Regime A: member 0 wins 20 rounds — both statistics agree.
        for _ in 0..20 {
            bucket.observe(&round(0), decay);
        }
        assert_eq!(bucket.leader_with(false, 0), 0);
        assert_eq!(bucket.leader_with(true, 0), 0);
        // Regime B: member 1 wins 6 rounds. The lifetime mean is still
        // dominated by regime A; the 4-observation window has moved on.
        for _ in 0..6 {
            bucket.observe(&round(1), decay);
        }
        assert_eq!(
            bucket.leader_with(false, 0),
            0,
            "unbounded mean must still prefer the regime-A winner"
        );
        assert_eq!(
            bucket.leader_with(true, 0),
            1,
            "windowed mean must have switched to the regime-B winner"
        );
    }

    #[test]
    fn windowed_policy_matches_unbounded_on_a_stable_workload() {
        // Without drift the recent mean and the lifetime mean rank the
        // members the same way, so a windowed tuner must answer the
        // identical makespans (the window only matters under drift).
        let inst = instance();
        let run = |config: TuneConfig| {
            let auto = Auto::with_config(config);
            let makespans: Vec<u64> = (0..24)
                .map(|k| {
                    auto.solve(&inst, &mut SolveCtx::seeded(900 + k))
                        .unwrap()
                        .makespan
                        .to_bits()
                })
                .collect();
            (makespans, auto.tuner_stats())
        };
        let (unbounded_makespans, unbounded_stats) = run(TuneConfig::default());
        let (windowed_makespans, windowed_stats) = run(TuneConfig {
            window: 8,
            ..TuneConfig::default()
        });
        assert_eq!(unbounded_makespans, windowed_makespans);
        assert_eq!(unbounded_stats, windowed_stats);
    }
}
