//! The Theorem-1 reduction `Knapsack ⇒ CoSchedCache-Dec`, executable.
//!
//! Follows the proof construction verbatim: constants
//! `N = max(n, 2U+1)`, `ε = 1/(N(N+1))`, `η = 1 - 1/N`, derived
//! `d_i = (u_i η / U)^α`, `e_i = (d_i^{1/α} + ε)^α`, footprints
//! `a_i = e_i^{1/α} · Cs`, products `w_i f_i = v_i / (1 - d_i/e_i)`
//! (we pick `f_i = 1`), and the makespan bound
//! `p·K = Σ w_i (1 + f_i·ls) + Σ w_i f_i ll − V`.

use crate::model::{seq_cost, Application, Platform};
use crate::npc::knapsack::Knapsack;

/// The CoSchedCache-Dec instance produced by the reduction, together with
/// the proof's intermediate constants (exposed for the property tests).
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The constructed applications (perfectly parallel, finite footprints).
    pub apps: Vec<Application>,
    /// The constructed platform (`p = 1`, `C0 = Cs` so `m0 = d`).
    pub platform: Platform,
    /// Makespan bound `K` of the decision problem.
    pub bound: f64,
    /// `d_i` of the proof.
    pub d: Vec<f64>,
    /// `e_i` of the proof.
    pub e: Vec<f64>,
    /// `ε = 1/(N(N+1))`.
    pub epsilon: f64,
    /// `η = 1 - 1/N`.
    pub eta: f64,
}

impl ReducedInstance {
    /// The canonical cache assignment for sharing subset `subset`:
    /// `x_i = e_i^{1/α} = u_i η/U + ε` for members, `0` otherwise —
    /// exactly the assignment used in the "⇒" direction of the proof.
    pub fn canonical_fractions(&self, subset: &[usize]) -> Vec<f64> {
        let alpha = self.platform.alpha;
        let mut x = vec![0.0; self.apps.len()];
        for &i in subset {
            x[i] = self.e[i].powf(1.0 / alpha);
        }
        x
    }

    /// Lemma-3 makespan of a cache assignment (`p = 1` here, so it is just
    /// the sum of sequential costs).
    pub fn makespan(&self, fractions: &[f64]) -> f64 {
        self.apps
            .iter()
            .zip(fractions)
            .map(|(a, &x)| seq_cost(a, &self.platform, x))
            .sum::<f64>()
            / self.platform.processors
    }

    /// Is `subset` (with canonical fractions) a witness for the decision
    /// problem? Checks both feasibility (`Σ x_i ≤ 1`) and the makespan
    /// bound, with a relative float tolerance.
    pub fn accepts(&self, subset: &[usize]) -> bool {
        let x = self.canonical_fractions(subset);
        let total: f64 = x.iter().sum();
        if total > 1.0 + 1e-12 {
            return false;
        }
        self.makespan(&x) <= self.bound * (1.0 + 1e-12)
    }

    /// Brute-force decision over all canonical subsets.
    ///
    /// The proof shows every yes-certificate can be normalised to a
    /// canonical subset (its "⇐" direction extracts a Knapsack solution
    /// from the nonzero subset, whose canonical re-assignment still
    /// certifies), so this decides the instance exactly.
    pub fn decide_bruteforce(&self) -> Option<Vec<usize>> {
        let n = self.apps.len();
        assert!(n <= 20, "brute-force decision limited to 20 applications");
        for mask in 0u64..(1 << n) {
            let subset: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            if self.accepts(&subset) {
                return Some(subset);
            }
        }
        None
    }
}

/// Builds the CoSchedCache-Dec instance of Theorem 1 from a Knapsack
/// instance, with power-law exponent `alpha` (the proof works for any
/// `α ∈ (0, 1]`).
///
/// # Panics
/// Panics if the Knapsack instance is empty or has `U = 0`, which the
/// reduction does not define.
pub fn knapsack_to_coschedcache(kp: &Knapsack, alpha: f64) -> ReducedInstance {
    assert!(!kp.is_empty(), "reduction undefined for empty Knapsack");
    assert!(kp.capacity > 0, "reduction undefined for U = 0");
    let n = kp.len();
    let big_n = (n as u64).max(2 * kp.capacity + 1) as f64;
    let epsilon = 1.0 / (big_n * (big_n + 1.0));
    let eta = 1.0 - 1.0 / big_n;

    let cs = 1.0; // cache size is immaterial: C0 = Cs makes m0 = d.
    let platform = Platform {
        processors: 1.0,
        cache_size: cs,
        ref_cache_size: cs,
        latency_cache: 0.17,
        latency_mem: 1.0,
        alpha,
    };

    let mut apps = Vec::with_capacity(n);
    let mut d = Vec::with_capacity(n);
    let mut e = Vec::with_capacity(n);
    let mut sum_a = 0.0; // Σ w_i (1 + f_i ls)
    let mut sum_z = 0.0; // Σ w_i f_i ll
    for i in 0..n {
        let u = kp.sizes[i] as f64;
        let v = kp.values[i] as f64;
        let di = (u * eta / kp.capacity as f64).powf(alpha);
        let ei = (di.powf(1.0 / alpha) + epsilon).powf(alpha);
        let wi = v / (1.0 - di / ei); // f_i = 1
        let footprint = ei.powf(1.0 / alpha) * cs;
        apps.push(
            Application::perfectly_parallel(format!("K{i}"), wi, 1.0, di).with_footprint(footprint),
        );
        d.push(di);
        e.push(ei);
        sum_a += wi * (1.0 + platform.latency_cache);
        sum_z += wi * platform.latency_mem;
    }
    let bound = sum_a + sum_z - kp.target as f64; // p = 1

    ReducedInstance {
        apps,
        platform,
        bound,
        d,
        e,
        epsilon,
        eta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn feasible_kp() -> Knapsack {
        // {0, 2} has size 2+3 = 5 <= 6 and value 9 >= 9.
        Knapsack::new(vec![2, 4, 3], vec![5, 3, 4], 6, 9)
    }

    fn infeasible_kp() -> Knapsack {
        // Max value within capacity 4 is 5 < 10.
        Knapsack::new(vec![2, 4, 3], vec![5, 3, 4], 4, 10)
    }

    #[test]
    fn construction_constants_match_proof() {
        let kp = feasible_kp();
        let inst = knapsack_to_coschedcache(&kp, 0.5);
        // N = max(3, 2*6+1) = 13.
        let n = 13.0;
        assert!((inst.epsilon - 1.0 / (n * (n + 1.0))).abs() < 1e-15);
        assert!((inst.eta - (1.0 - 1.0 / n)).abs() < 1e-15);
        for i in 0..kp.len() {
            let expected_d = (kp.sizes[i] as f64 * inst.eta / 6.0).sqrt();
            assert!((inst.d[i] - expected_d).abs() < 1e-12);
            // e^{1/alpha} = d^{1/alpha} + epsilon.
            assert!(
                (inst.e[i].powi(2) - (inst.d[i].powi(2) + inst.epsilon)).abs() < 1e-12,
                "e/d relation broken at {i}"
            );
            // Footprint caps the useful fraction at e^{1/alpha}.
            assert!((inst.apps[i].footprint - inst.e[i].powi(2)).abs() < 1e-12);
        }
    }

    #[test]
    fn canonical_fractions_hit_footprint_caps() {
        let inst = knapsack_to_coschedcache(&feasible_kp(), 0.5);
        let x = inst.canonical_fractions(&[0, 2]);
        assert_eq!(x[1], 0.0);
        assert!((x[0] - inst.e[0].powi(2)).abs() < 1e-15);
        assert!((x[2] - inst.e[2].powi(2)).abs() < 1e-15);
    }

    #[test]
    fn knapsack_witness_certifies_coschedcache() {
        // Forward direction of the proof on a concrete instance.
        let kp = feasible_kp();
        let inst = knapsack_to_coschedcache(&kp, 0.5);
        assert!(inst.accepts(&[0, 2]));
    }

    #[test]
    fn infeasible_knapsack_gives_unacceptable_instance() {
        let inst = knapsack_to_coschedcache(&infeasible_kp(), 0.5);
        assert!(inst.decide_bruteforce().is_none());
    }

    #[test]
    fn feasible_knapsack_gives_acceptable_instance() {
        let inst = knapsack_to_coschedcache(&feasible_kp(), 0.5);
        let witness = inst.decide_bruteforce().expect("should accept");
        // The witness maps back to a Knapsack solution (proof, direction 2).
        let kp = feasible_kp();
        let size: u64 = witness.iter().map(|&i| kp.sizes[i]).sum();
        let value: u64 = witness.iter().map(|&i| kp.values[i]).sum();
        assert!(size <= kp.capacity);
        assert!(value >= kp.target);
    }

    #[test]
    fn canonical_feasibility_matches_eta_budget() {
        // Σ_{i∈I} x_i = Σ u_i η / U + |I| ε ≤ η + 1/(N+1) ≤ 1 whenever the
        // knapsack subset respects capacity (proof inequality).
        let kp = feasible_kp();
        let inst = knapsack_to_coschedcache(&kp, 0.5);
        let x = inst.canonical_fractions(&[0, 2]);
        let total: f64 = x.iter().sum();
        assert!(total <= 1.0);
        let expected =
            (kp.sizes[0] + kp.sizes[2]) as f64 * inst.eta / kp.capacity as f64 + 2.0 * inst.epsilon;
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty Knapsack")]
    fn empty_knapsack_panics() {
        let kp = Knapsack::new(vec![], vec![], 5, 1);
        let _ = knapsack_to_coschedcache(&kp, 0.5);
    }

    #[test]
    fn reduction_works_for_other_alphas() {
        for alpha in [0.3, 0.5, 0.7, 1.0] {
            let kp = feasible_kp();
            let inst = knapsack_to_coschedcache(&kp, alpha);
            assert_eq!(
                inst.decide_bruteforce().is_some(),
                kp.is_feasible(),
                "alpha = {alpha}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn reduction_preserves_decision(
            items in prop::collection::vec((1u64..8, 1u64..12), 1..7),
            capacity in 1u64..16,
            target in 1u64..30,
        ) {
            let (sizes, values): (Vec<u64>, Vec<u64>) = items.into_iter().unzip();
            let kp = Knapsack::new(sizes, values, capacity, target);
            let inst = knapsack_to_coschedcache(&kp, 0.5);
            prop_assert_eq!(
                inst.decide_bruteforce().is_some(),
                kp.is_feasible(),
                "decision mismatch for {:?}", kp
            );
        }

        #[test]
        fn witnesses_map_back_to_knapsack_solutions(
            items in prop::collection::vec((1u64..8, 1u64..12), 1..7),
            capacity in 1u64..16,
            target in 1u64..30,
        ) {
            let (sizes, values): (Vec<u64>, Vec<u64>) = items.into_iter().unzip();
            let kp = Knapsack::new(sizes, values, capacity, target);
            let inst = knapsack_to_coschedcache(&kp, 0.5);
            if let Some(witness) = inst.decide_bruteforce() {
                let size: u64 = witness.iter().map(|&i| kp.sizes[i]).sum();
                let value: u64 = witness.iter().map(|&i| kp.values[i]).sum();
                prop_assert!(size <= kp.capacity, "witness violates capacity");
                prop_assert!(value >= kp.target, "witness misses target");
            }
        }
    }
}
