//! The NP-completeness machinery of Theorem 1 made executable.
//!
//! The paper proves `CoSchedCache-Dec` NP-complete by reduction from
//! Knapsack. This module implements:
//!
//! * [`knapsack`] — the source problem, with a dynamic-programming solver
//!   and a branch-and-bound solver (used to cross-check each other and to
//!   decide small instances);
//! * [`reduction`] — the exact instance construction of the proof
//!   (constants `N`, `ε`, `η`, derived `d_i`, `e_i`, `a_i`, `w_i f_i` and
//!   the bound `K`), plus decision procedures for both directions so
//!   property tests can verify the equivalence
//!   `I1 solvable ⇔ I2 solvable` on concrete instances.

pub mod knapsack;
pub mod reduction;

pub use knapsack::{Knapsack, KnapsackSolution};
pub use reduction::{knapsack_to_coschedcache, ReducedInstance};
