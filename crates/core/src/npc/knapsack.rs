//! 0/1 Knapsack: the NP-complete source problem of Theorem 1.

/// A 0/1 Knapsack instance: `n` objects with positive integer sizes `u_i`
/// and values `v_i`; the decision question asks for a subset `I` with
/// `Σ_{i∈I} u_i ≤ U` and `Σ_{i∈I} v_i ≥ V`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knapsack {
    /// Object sizes `u_i` (positive).
    pub sizes: Vec<u64>,
    /// Object values `v_i` (positive).
    pub values: Vec<u64>,
    /// Capacity bound `U`.
    pub capacity: u64,
    /// Value target `V` (for the decision variant).
    pub target: u64,
}

/// An optimal packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnapsackSolution {
    /// Chosen object indices, sorted.
    pub chosen: Vec<usize>,
    /// Total value of the chosen objects.
    pub value: u64,
    /// Total size of the chosen objects.
    pub size: u64,
}

impl Knapsack {
    /// Builds an instance; panics if sizes/values lengths differ.
    pub fn new(sizes: Vec<u64>, values: Vec<u64>, capacity: u64, target: u64) -> Self {
        assert_eq!(sizes.len(), values.len(), "sizes/values length mismatch");
        Self {
            sizes,
            values,
            capacity,
            target,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` iff there are no objects.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Maximum achievable value, by dynamic programming over capacities
    /// (`O(n·U)` time, `O(U)` space).
    pub fn solve_dp(&self) -> KnapsackSolution {
        let cap = self.capacity as usize;
        // best[c] = max value using exactly capacity budget c.
        let mut best = vec![0u64; cap + 1];
        // keep[i][c] = whether object i is taken at budget c.
        let mut keep = vec![vec![false; cap + 1]; self.len()];
        for (i, keep_row) in keep.iter_mut().enumerate() {
            let (u, v) = (self.sizes[i] as usize, self.values[i]);
            if u > cap {
                continue;
            }
            for c in (u..=cap).rev() {
                let candidate = best[c - u] + v;
                if candidate > best[c] {
                    best[c] = candidate;
                    keep_row[c] = true;
                }
            }
        }
        // Backtrack.
        let mut chosen = Vec::new();
        let mut c = cap;
        for i in (0..self.len()).rev() {
            if keep[i][c] {
                chosen.push(i);
                c -= self.sizes[i] as usize;
            }
        }
        chosen.reverse();
        let value = chosen.iter().map(|&i| self.values[i]).sum();
        let size = chosen.iter().map(|&i| self.sizes[i]).sum();
        KnapsackSolution {
            chosen,
            value,
            size,
        }
    }

    /// Maximum achievable value by branch-and-bound with a fractional
    /// relaxation bound. Exponential worst case but independent of `U`.
    pub fn solve_bb(&self) -> KnapsackSolution {
        // Order by value density for the LP bound.
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            let da = self.values[a] as f64 / self.sizes[a] as f64;
            let db = self.values[b] as f64 / self.sizes[b] as f64;
            db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
        });

        struct State<'a> {
            kp: &'a Knapsack,
            order: &'a [usize],
            best_value: u64,
            best_set: Vec<usize>,
            current: Vec<usize>,
        }

        fn upper_bound(kp: &Knapsack, order: &[usize], depth: usize, room: u64) -> f64 {
            let mut bound = 0.0;
            let mut room = room as f64;
            for &i in &order[depth..] {
                let (u, v) = (kp.sizes[i] as f64, kp.values[i] as f64);
                if u <= room {
                    bound += v;
                    room -= u;
                } else {
                    bound += v * room / u;
                    break;
                }
            }
            bound
        }

        fn recurse(st: &mut State<'_>, depth: usize, room: u64, value: u64) {
            if value > st.best_value {
                st.best_value = value;
                st.best_set = st.current.clone();
            }
            if depth == st.order.len() {
                return;
            }
            if value as f64 + upper_bound(st.kp, st.order, depth, room) <= st.best_value as f64 {
                return;
            }
            let i = st.order[depth];
            if st.kp.sizes[i] <= room {
                st.current.push(i);
                recurse(
                    st,
                    depth + 1,
                    room - st.kp.sizes[i],
                    value + st.kp.values[i],
                );
                st.current.pop();
            }
            recurse(st, depth + 1, room, value);
        }

        let mut st = State {
            kp: self,
            order: &order,
            best_value: 0,
            best_set: Vec::new(),
            current: Vec::new(),
        };
        recurse(&mut st, 0, self.capacity, 0);
        let mut chosen = st.best_set;
        chosen.sort_unstable();
        let value = chosen.iter().map(|&i| self.values[i]).sum();
        let size = chosen.iter().map(|&i| self.sizes[i]).sum();
        KnapsackSolution {
            chosen,
            value,
            size,
        }
    }

    /// Decision variant: does a subset reach value `target` within
    /// `capacity`?
    pub fn is_feasible(&self) -> bool {
        self.solve_dp().value >= self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_instances() {
        let kp = Knapsack::new(vec![], vec![], 10, 0);
        assert!(kp.is_empty());
        assert!(kp.is_feasible()); // target 0 always reachable
        let sol = kp.solve_dp();
        assert_eq!(sol.value, 0);
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn textbook_instance() {
        // Classic: sizes 1..5, values chosen so the optimum is {2, 3}.
        let kp = Knapsack::new(vec![2, 3, 4, 5], vec![3, 4, 5, 6], 7, 9);
        let sol = kp.solve_dp();
        assert_eq!(sol.value, 9);
        assert!(sol.size <= 7);
        assert!(kp.is_feasible());
    }

    #[test]
    fn dp_and_bb_agree_on_fixed_cases() {
        let cases = vec![
            Knapsack::new(vec![1, 2, 3], vec![6, 10, 12], 5, 0),
            Knapsack::new(vec![10, 20, 30], vec![60, 100, 120], 50, 0),
            Knapsack::new(vec![5, 4, 6, 3], vec![10, 40, 30, 50], 10, 0),
            Knapsack::new(vec![7], vec![9], 3, 0),
        ];
        for kp in cases {
            assert_eq!(kp.solve_dp().value, kp.solve_bb().value, "{kp:?}");
        }
    }

    #[test]
    fn oversized_objects_are_skipped() {
        let kp = Knapsack::new(vec![100, 1], vec![1000, 1], 10, 1);
        let sol = kp.solve_dp();
        assert_eq!(sol.chosen, vec![1]);
        assert_eq!(sol.value, 1);
    }

    #[test]
    fn chosen_set_is_consistent() {
        let kp = Knapsack::new(vec![3, 5, 7, 2, 4], vec![9, 10, 12, 3, 8], 12, 0);
        for sol in [kp.solve_dp(), kp.solve_bb()] {
            assert_eq!(
                sol.value,
                sol.chosen.iter().map(|&i| kp.values[i]).sum::<u64>()
            );
            assert_eq!(
                sol.size,
                sol.chosen.iter().map(|&i| kp.sizes[i]).sum::<u64>()
            );
            assert!(sol.size <= kp.capacity);
        }
    }

    proptest! {
        #[test]
        fn dp_matches_branch_and_bound(
            items in prop::collection::vec((1u64..20, 1u64..50), 1..10),
            capacity in 1u64..60,
        ) {
            let (sizes, values): (Vec<u64>, Vec<u64>) = items.into_iter().unzip();
            let kp = Knapsack::new(sizes, values, capacity, 0);
            prop_assert_eq!(kp.solve_dp().value, kp.solve_bb().value);
        }

        #[test]
        fn solutions_respect_capacity(
            items in prop::collection::vec((1u64..20, 1u64..50), 1..10),
            capacity in 1u64..60,
        ) {
            let (sizes, values): (Vec<u64>, Vec<u64>) = items.into_iter().unzip();
            let kp = Knapsack::new(sizes, values, capacity, 0);
            prop_assert!(kp.solve_dp().size <= capacity);
            prop_assert!(kp.solve_bb().size <= capacity);
        }

        #[test]
        fn adding_capacity_never_hurts(
            items in prop::collection::vec((1u64..20, 1u64..50), 1..8),
            capacity in 1u64..40,
        ) {
            let (sizes, values): (Vec<u64>, Vec<u64>) = items.into_iter().unzip();
            let a = Knapsack::new(sizes.clone(), values.clone(), capacity, 0).solve_dp().value;
            let b = Knapsack::new(sizes, values, capacity + 5, 0).solve_dp().value;
            prop_assert!(b >= a);
        }
    }
}
