//! The [`Portfolio`] meta-solver: run several solvers on one instance and
//! keep the best schedule.

use std::time::{Duration, Instant};

use crate::algo::Outcome;
use crate::error::{CoschedError, Result};
use crate::parallel::parallel_map;
use crate::solver::{Instance, SolveCtx, Solver};

/// One member's contribution to a [`PortfolioOutcome`].
#[derive(Debug, Clone)]
pub struct MemberOutcome {
    /// The member solver's [`Solver::name`].
    pub name: String,
    /// What it produced (individual members are allowed to fail as long as
    /// at least one succeeds).
    pub result: Result<Outcome>,
    /// Wall time the member's solve took — the cost side of the
    /// quality/cost tradeoff ([`crate::tune`] learns from it, `cosched
    /// --eval-stats` prints it). Measured per member even when the
    /// portfolio fans out on threads; *not* part of any determinism
    /// guarantee (the numeric fields are).
    pub elapsed: Duration,
}

/// Best outcome plus the full per-solver breakdown.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Index into [`Portfolio::members`] of the winning solver (ties go to
    /// the earliest member, so the result is deterministic).
    pub best_index: usize,
    /// Name of the winning solver.
    pub best_name: String,
    /// The winning (minimum-makespan) outcome.
    pub outcome: Outcome,
    /// Every member's result, in member order.
    pub members: Vec<MemberOutcome>,
}

/// Runs a set of [`Solver`]s on the same instance and returns the
/// minimum-makespan outcome — a meta-solver the closed `Strategy` enum
/// could not express.
///
/// Member solvers draw from independent [`SolveCtx::child`] seeds, so the
/// result is bit-identical whether members run serially or in parallel
/// (see [`SolveCtx::threads`]).
pub struct Portfolio {
    members: Vec<Box<dyn Solver>>,
}

impl Portfolio {
    /// A portfolio over `members` (typically [`crate::solver::all()`]).
    pub fn new(members: Vec<Box<dyn Solver>>) -> Self {
        Self { members }
    }

    /// The member solvers, in the order outcomes are reported.
    pub fn members(&self) -> &[Box<dyn Solver>] {
        &self.members
    }

    /// Runs every member and returns the best outcome together with the
    /// per-solver breakdown.
    ///
    /// # Errors
    /// [`CoschedError::EmptyPortfolio`] if there are no members; otherwise
    /// the first member's error if **every** member failed.
    pub fn solve_detailed(&self, instance: &Instance, ctx: &SolveCtx) -> Result<PortfolioOutcome> {
        if self.members.is_empty() {
            return Err(CoschedError::EmptyPortfolio);
        }
        let mut sp = crate::obs::span("solver", "portfolio");
        sp.set_args(self.members.len() as u64, instance.len() as u64);
        let members: Vec<MemberOutcome> =
            parallel_map(self.members.len(), ctx.threads.max(1), |i| {
                // Member index in arg0 (names are dynamic; the ring holds
                // only `&'static str`), instance size in arg1.
                let mut member_sp = crate::obs::span("solver", "portfolio_member");
                member_sp.set_args(i as u64, instance.len() as u64);
                let mut child = ctx.child(i as u64);
                let started = Instant::now();
                let result = self.members[i].solve(instance, &mut child);
                MemberOutcome {
                    name: self.members[i].name(),
                    result,
                    elapsed: started.elapsed(),
                }
            });
        let mut best: Option<usize> = None;
        for (i, m) in members.iter().enumerate() {
            if let Ok(o) = &m.result {
                let better = match best {
                    None => true,
                    Some(b) => {
                        o.makespan < members[b].result.as_ref().expect("best is Ok").makespan
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        match best {
            Some(i) => Ok(PortfolioOutcome {
                best_index: i,
                best_name: members[i].name.clone(),
                outcome: members[i].result.clone().expect("best is Ok"),
                members,
            }),
            None => Err(members[0].result.clone().expect_err("no member succeeded")),
        }
    }
}

impl Solver for Portfolio {
    fn name(&self) -> String {
        "Portfolio".to_string()
    }

    fn is_randomized(&self) -> bool {
        self.members.iter().any(|m| m.is_randomized())
    }

    fn solve(&self, instance: &Instance, ctx: &mut SolveCtx) -> Result<Outcome> {
        self.solve_detailed(instance, ctx).map(|p| p.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::Strategy;
    use crate::model::{Application, Platform};

    fn instance() -> Instance {
        let apps = vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3),
            Application::new("SP", 1.38e11, 0.02, 0.762, 1.51e-2),
        ];
        Instance::new(apps, Platform::taihulight()).unwrap()
    }

    #[test]
    fn portfolio_picks_the_minimum_makespan_member() {
        let inst = instance();
        let portfolio = Portfolio::new(crate::solver::all());
        let report = portfolio
            .solve_detailed(&inst, &SolveCtx::seeded(11))
            .unwrap();
        for m in &report.members {
            let o = m.result.as_ref().unwrap();
            assert!(
                report.outcome.makespan <= o.makespan,
                "{} beat the reported best",
                m.name
            );
        }
        assert_eq!(report.members[report.best_index].name, report.best_name);
    }

    #[test]
    fn serial_and_parallel_portfolios_agree() {
        let inst = instance();
        let portfolio = Portfolio::new(crate::solver::all());
        let serial = portfolio
            .solve_detailed(&inst, &SolveCtx::seeded(5))
            .unwrap();
        let parallel = portfolio
            .solve_detailed(&inst, &SolveCtx::seeded(5).with_threads(4))
            .unwrap();
        assert_eq!(serial.best_index, parallel.best_index);
        assert_eq!(serial.outcome, parallel.outcome);
        for (a, b) in serial.members.iter().zip(&parallel.members) {
            assert_eq!(
                a.result, b.result,
                "{} diverged across thread counts",
                a.name
            );
        }
    }

    #[test]
    fn empty_portfolio_is_an_error() {
        let err = Portfolio::new(vec![])
            .solve_detailed(&instance(), &SolveCtx::seeded(0))
            .unwrap_err();
        assert_eq!(err, CoschedError::EmptyPortfolio);
    }

    #[test]
    fn randomization_flag_reflects_members() {
        assert!(!Portfolio::new(vec![Strategy::Fair.to_solver()]).is_randomized());
        assert!(Portfolio::new(vec![Strategy::RandomPart.to_solver()]).is_randomized());
    }
}
