//! Deterministic seeded fan-out of many solvers over many instances.

use crate::algo::Outcome;
use crate::error::Result;
use crate::eval::{EvalScratch, EvalStats};
use crate::parallel::parallel_map_with;
use crate::solver::{child_seed, Instance, SolveCtx, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Salt separating solver RNG streams from instance-generation streams, so
/// a solver can never accidentally share randomness with the generator
/// that produced its instance.
const ALGO_SALT: u64 = 0xA190;

/// Shape of one batch: how many repetitions, on how many threads, from
/// which root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    /// Number of seeded repetitions (the paper averages 50 per point).
    pub reps: usize,
    /// Worker threads; the results are independent of this value.
    pub threads: usize,
    /// Root seed; every (repetition, solver) pair derives a child from it.
    pub seed: u64,
    /// Stream id, e.g. the index of a sweep point. Batches with different
    /// streams draw disjoint instance and solver randomness from the same
    /// root seed, so a sweep can reuse one seed across its points.
    pub stream: u64,
}

impl BatchSpec {
    /// A serial single-stream batch; adjust with the builder methods.
    pub fn new(reps: usize, seed: u64) -> Self {
        Self {
            reps,
            threads: 1,
            seed,
            stream: 0,
        }
    }

    /// Returns a copy fanning out on `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy drawing from stream `stream`.
    #[must_use]
    pub fn with_stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }
}

/// Produces the instance for one repetition from that repetition's
/// deterministic RNG.
pub type InstanceSource<'a> = &'a (dyn Fn(usize, &mut StdRng) -> Result<Instance> + Sync);

/// Runs every solver against `spec.reps` seeded instances and returns the
/// outcomes as `outcomes[rep][solver]`.
///
/// Guarantees:
///
/// * **Paired comparison** — all solvers see the *same* instance within a
///   repetition.
/// * **Determinism** — the result is a pure function of `(source, solvers,
///   spec.seed, spec.stream, spec.reps)`; `spec.threads` only changes the
///   wall-clock time. Randomized solvers draw from per-`(rep, solver)`
///   child seeds that are independent of the instance stream.
/// * **Error propagation** — a failing instance build or solve aborts the
///   batch with that error instead of panicking inside a worker thread.
pub fn solve_batch(
    source: InstanceSource<'_>,
    solvers: &[&dyn Solver],
    spec: &BatchSpec,
) -> Result<Vec<Vec<Outcome>>> {
    // One EvalScratch per worker, recycled across every (rep, solver) pair
    // that worker executes: the batched kernels then run allocation-free
    // after the first repetition. Results are unaffected — kernels clear
    // their output buffers before writing — which the determinism tests
    // (serial == parallel, fresh == reused) pin down.
    let per_rep: Vec<Result<Vec<Outcome>>> = parallel_map_with(
        spec.reps,
        spec.threads.max(1),
        EvalScratch::new,
        |scratch, rep| {
            let mut inst_rng =
                StdRng::seed_from_u64(child_seed(spec.seed, rep as u64, spec.stream));
            let instance = source(rep, &mut inst_rng)?;
            solvers
                .iter()
                .enumerate()
                .map(|(si, s)| {
                    // Two-level derivation: mixing (rep, stream) into a root
                    // first keeps (stream, solver) pairs collision-free for
                    // any solver count.
                    let root = child_seed(spec.seed ^ ALGO_SALT, rep as u64, spec.stream);
                    let mut ctx = SolveCtx::seeded(child_seed(root, si as u64, 0))
                        .with_recycled_scratch(std::mem::take(scratch));
                    let outcome = s.solve(&instance, &mut ctx);
                    *scratch = ctx.take_scratch();
                    outcome
                })
                .collect()
        },
    );
    per_rep.into_iter().collect()
}

/// Aggregates the per-outcome [`EvalStats`] of a [`solve_batch`] result
/// into one counter per solver (column-wise over repetitions).
pub fn batch_eval_stats(outcomes: &[Vec<Outcome>]) -> Vec<EvalStats> {
    let cols = outcomes.first().map_or(0, Vec::len);
    let mut agg = vec![EvalStats::default(); cols];
    for row in outcomes {
        for (acc, o) in agg.iter_mut().zip(row) {
            acc.merge(o.eval_stats);
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{BuildOrder, Choice, Strategy};
    use crate::error::CoschedError;
    use crate::model::{Application, Platform};
    use rand::RngExt as _;

    fn source(rep: usize, rng: &mut StdRng) -> Result<Instance> {
        let n = 3 + rep % 2;
        let apps = (0..n)
            .map(|i| {
                Application::new(
                    format!("A{i}"),
                    rng.random_range(1e10..1e11),
                    0.02,
                    rng.random_range(0.3..0.9),
                    rng.random_range(1e-3..1e-2),
                )
            })
            .collect();
        Instance::new(apps, Platform::taihulight())
    }

    fn solvers() -> Vec<Strategy> {
        vec![
            Strategy::dominant(BuildOrder::Forward, Choice::MinRatio),
            Strategy::RandomPart,
            Strategy::ZeroCache,
        ]
    }

    fn refs(s: &[Strategy]) -> Vec<&dyn Solver> {
        s.iter().map(|s| s as &dyn Solver).collect()
    }

    #[test]
    fn shape_and_rerun_determinism() {
        let s = solvers();
        let spec = BatchSpec::new(4, 99).with_stream(2);
        let a = solve_batch(&source, &refs(&s), &spec).unwrap();
        let b = solve_batch(&source, &refs(&s), &spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|row| row.len() == 3));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let s = solvers();
        let serial = solve_batch(&source, &refs(&s), &BatchSpec::new(6, 42)).unwrap();
        let parallel =
            solve_batch(&source, &refs(&s), &BatchSpec::new(6, 42).with_threads(4)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn streams_are_independent() {
        let s = solvers();
        let a = solve_batch(&source, &refs(&s), &BatchSpec::new(2, 7).with_stream(0)).unwrap();
        let b = solve_batch(&source, &refs(&s), &BatchSpec::new(2, 7).with_stream(1)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn eval_stats_aggregate_per_solver_column() {
        let s = solvers();
        let outcomes = solve_batch(&source, &refs(&s), &BatchSpec::new(5, 3)).unwrap();
        let agg = batch_eval_stats(&outcomes);
        assert_eq!(agg.len(), 3);
        for (col, acc) in agg.iter().enumerate() {
            let expected: u64 = outcomes
                .iter()
                .map(|r| r[col].eval_stats.kernel_calls)
                .sum();
            assert_eq!(acc.kernel_calls, expected);
            assert!(acc.kernel_calls >= 5, "each rep contributes at least once");
        }
        assert!(batch_eval_stats(&[]).is_empty());
    }

    #[test]
    fn instance_errors_propagate_instead_of_panicking() {
        let bad: InstanceSource<'_> = &|rep, _rng| {
            if rep == 1 {
                Instance::new(vec![], Platform::taihulight())
            } else {
                source(rep, &mut StdRng::seed_from_u64(0))
            }
        };
        let s = solvers();
        let err = solve_batch(bad, &refs(&s), &BatchSpec::new(3, 0).with_threads(2)).unwrap_err();
        assert_eq!(err, CoschedError::EmptyInstance);
    }
}
