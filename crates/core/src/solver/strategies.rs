//! [`Solver`] implementations for the paper's strategies.
//!
//! The algorithm bodies live here, operating on a pre-validated
//! [`Instance`] with cached execution models; the legacy
//! [`Strategy::run`](crate::algo::Strategy::run) entry point is now a thin
//! wrapper that builds the `Instance` and delegates.

use crate::algo::baselines::{all_proc_cache_core, fair_core, random_part_core, zero_cache_core};
use crate::algo::{dominant_partition, BuildOrder, Choice, Outcome, Strategy};
use crate::error::Result;
use crate::model::Schedule;
use crate::solver::{Instance, SolveCtx, Solver};
use crate::theory::cache_alloc::optimal_cache_fractions;
use crate::theory::proc_alloc::equal_finish_split;

impl Solver for Strategy {
    fn name(&self) -> String {
        Strategy::name(self)
    }

    fn is_randomized(&self) -> bool {
        Strategy::is_randomized(self)
    }

    fn solve(&self, instance: &Instance, ctx: &mut SolveCtx) -> Result<Outcome> {
        let (apps, platform, models) = (instance.apps(), instance.platform(), instance.models());
        match self {
            Self::Dominant { order, choice } => {
                let partition = dominant_partition(models, *order, *choice, ctx.rng());
                let cache = optimal_cache_fractions(models, &partition);
                let ef = equal_finish_split(apps, platform, &cache)?;
                Ok(Outcome {
                    makespan: ef.makespan,
                    schedule: Schedule::from_parts(&ef.procs, &cache),
                    partition,
                    concurrent: true,
                })
            }
            Self::DominantRefined { max_iters } => {
                let partition =
                    dominant_partition(models, BuildOrder::Forward, Choice::MinRatio, ctx.rng());
                let cache = optimal_cache_fractions(models, &partition);
                let refined = crate::algo::refine::refine(
                    apps, platform, models, &partition, cache, *max_iters,
                )?;
                Ok(Outcome {
                    makespan: refined.makespan,
                    schedule: refined.schedule,
                    partition,
                    concurrent: true,
                })
            }
            Self::RandomPart => random_part_core(apps, platform, models, ctx.rng()),
            Self::Fair => Ok(fair_core(apps, platform)),
            Self::ZeroCache => zero_cache_core(apps, platform),
            Self::AllProcCache => Ok(all_proc_cache_core(apps, platform)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Application, Platform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance {
        let apps = vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3),
            Application::new("LU", 1.52e11, 0.07, 0.750, 1.51e-3),
            Application::new("MG", 1.23e10, 0.12, 0.540, 2.62e-2),
        ];
        Instance::new(apps, Platform::taihulight()).unwrap()
    }

    #[test]
    fn solver_and_legacy_run_agree_for_deterministic_strategies() {
        let inst = instance();
        for s in [
            Strategy::dominant(BuildOrder::Forward, Choice::MinRatio),
            Strategy::dominant(BuildOrder::Reverse, Choice::MaxRatio),
            Strategy::refined(),
            Strategy::Fair,
            Strategy::ZeroCache,
            Strategy::AllProcCache,
        ] {
            let via_solver = s.solve(&inst, &mut SolveCtx::seeded(0)).unwrap();
            let via_run = s
                .run(inst.apps(), inst.platform(), &mut StdRng::seed_from_u64(1))
                .unwrap();
            assert_eq!(via_solver, via_run, "{}", Solver::name(&s));
        }
    }

    #[test]
    fn randomized_solvers_draw_from_the_ctx_stream() {
        let inst = instance();
        let a = Strategy::RandomPart
            .solve(&inst, &mut SolveCtx::seeded(3))
            .unwrap();
        let b = Strategy::RandomPart
            .solve(&inst, &mut SolveCtx::seeded(3))
            .unwrap();
        assert_eq!(a, b, "same ctx seed must reproduce");
        let mut partitions = std::collections::HashSet::new();
        for seed in 0..16 {
            let o = Strategy::RandomPart
                .solve(&inst, &mut SolveCtx::seeded(seed))
                .unwrap();
            partitions.insert(o.partition.members().to_vec());
        }
        assert!(partitions.len() > 1, "ctx seed never changed the partition");
    }
}
