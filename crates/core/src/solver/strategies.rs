//! [`Solver`] implementations for the paper's strategies.
//!
//! The algorithm bodies live here, operating on a pre-validated
//! [`Instance`] with cached execution models; the legacy
//! [`Strategy::run`](crate::algo::Strategy::run) entry point is now a thin
//! wrapper that builds the `Instance` and delegates.

use crate::algo::baselines::{all_proc_cache_core, fair_core, random_part_core, zero_cache_core};
use crate::algo::{dominant_partition, BuildOrder, Choice, Outcome, Strategy};
use crate::error::Result;
use crate::model::Schedule;
use crate::solver::{Instance, SolveCtx, Solver};
use crate::theory::cache_alloc::{optimal_cache_fractions, optimal_cache_fractions_into};
use crate::theory::proc_alloc::equal_finish_split_eval;

impl Solver for Strategy {
    fn name(&self) -> String {
        Strategy::name(self)
    }

    fn is_randomized(&self) -> bool {
        Strategy::is_randomized(self)
    }

    fn solve(&self, instance: &Instance, ctx: &mut SolveCtx) -> Result<Outcome> {
        let (models, eval) = (instance.models(), instance.eval());
        let before = ctx.stats();
        let mut outcome = match self {
            Self::Dominant { order, choice } => {
                let partition = dominant_partition(models, *order, *choice, ctx.rng());
                // Theorem-3 fractions land in the scratch's reusable buffer
                // (taken out for the duration of the solve so the kernels
                // below can borrow the scratch mutably) — bit-identical to
                // the boxed `optimal_cache_fractions`, allocation-free on a
                // warm scratch.
                let mut cache = std::mem::take(&mut ctx.scratch().fractions);
                optimal_cache_fractions_into(eval.weights(), &partition, &mut cache);
                let solved =
                    equal_finish_split_eval(eval, &cache, ctx.scratch()).map(|ef| Outcome {
                        makespan: ef.makespan,
                        schedule: Schedule::from_parts(&ef.procs, &cache),
                        partition,
                        concurrent: true,
                        eval_stats: Default::default(),
                        optimal: false,
                    });
                // Hand the buffer back before propagating any bisection
                // error, so a failed solve cannot shrink the recycled
                // scratch.
                ctx.scratch().fractions = cache;
                solved?
            }
            Self::DominantRefined { max_iters } => {
                let partition =
                    dominant_partition(models, BuildOrder::Forward, Choice::MinRatio, ctx.rng());
                let cache = optimal_cache_fractions(models, &partition);
                let refined = crate::algo::refine::refine_eval(
                    eval,
                    &partition,
                    cache,
                    *max_iters,
                    ctx.scratch(),
                )?;
                Outcome {
                    makespan: refined.makespan,
                    schedule: refined.schedule,
                    partition,
                    concurrent: true,
                    eval_stats: Default::default(),
                    optimal: false,
                }
            }
            Self::RandomPart => {
                let (rng, scratch) = ctx.rng_and_scratch();
                random_part_core(eval, rng, scratch)?
            }
            Self::Fair => fair_core(eval, ctx.scratch()),
            Self::ZeroCache => zero_cache_core(eval, ctx.scratch())?,
            Self::AllProcCache => all_proc_cache_core(eval, ctx.scratch()),
        };
        outcome.eval_stats = ctx.stats().since(before);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Application, Platform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance {
        let apps = vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3),
            Application::new("LU", 1.52e11, 0.07, 0.750, 1.51e-3),
            Application::new("MG", 1.23e10, 0.12, 0.540, 2.62e-2),
        ];
        Instance::new(apps, Platform::taihulight()).unwrap()
    }

    /// The **only** caller of the deprecated [`Strategy::run`] compat
    /// wrapper left in the workspace: it pins the wrapper's contract
    /// (validate + derive + solve ≡ the Solver API) so the deprecation can
    /// never silently change behaviour.
    #[test]
    #[allow(deprecated)]
    fn solver_and_legacy_run_agree_for_deterministic_strategies() {
        let inst = instance();
        for s in [
            Strategy::dominant(BuildOrder::Forward, Choice::MinRatio),
            Strategy::dominant(BuildOrder::Reverse, Choice::MaxRatio),
            Strategy::refined(),
            Strategy::Fair,
            Strategy::ZeroCache,
            Strategy::AllProcCache,
        ] {
            let via_solver = s.solve(&inst, &mut SolveCtx::seeded(0)).unwrap();
            let via_run = s
                .run(inst.apps(), inst.platform(), &mut StdRng::seed_from_u64(1))
                .unwrap();
            assert_eq!(via_solver, via_run, "{}", Solver::name(&s));
        }
    }

    #[test]
    fn every_strategy_reports_its_evaluation_work() {
        let inst = instance();
        let mut strategies = Strategy::all_coscheduling();
        strategies.push(Strategy::AllProcCache);
        strategies.push(Strategy::refined());
        for s in strategies {
            let o = s.solve(&inst, &mut SolveCtx::seeded(1)).unwrap();
            assert!(
                o.eval_stats.kernel_calls > 0,
                "{} reported no kernel calls",
                Solver::name(&s)
            );
            assert!(
                o.eval_stats.apps_evaluated >= o.eval_stats.kernel_calls,
                "{} evaluated fewer apps than kernels",
                Solver::name(&s)
            );
            // Stats are part of the outcome and must reproduce under the
            // same seed.
            let again = s.solve(&inst, &mut SolveCtx::seeded(1)).unwrap();
            assert_eq!(o.eval_stats, again.eval_stats, "{}", Solver::name(&s));
        }
    }

    #[test]
    fn stats_accumulate_across_solves_but_outcomes_report_deltas() {
        let inst = instance();
        let mut ctx = SolveCtx::seeded(0);
        let first = Strategy::ZeroCache.solve(&inst, &mut ctx).unwrap();
        let second = Strategy::ZeroCache.solve(&inst, &mut ctx).unwrap();
        assert_eq!(first.eval_stats, second.eval_stats);
        assert_eq!(
            ctx.stats().kernel_calls,
            2 * first.eval_stats.kernel_calls,
            "context counters accumulate"
        );
    }

    #[test]
    fn randomized_solvers_draw_from_the_ctx_stream() {
        let inst = instance();
        let a = Strategy::RandomPart
            .solve(&inst, &mut SolveCtx::seeded(3))
            .unwrap();
        let b = Strategy::RandomPart
            .solve(&inst, &mut SolveCtx::seeded(3))
            .unwrap();
        assert_eq!(a, b, "same ctx seed must reproduce");
        let mut partitions = std::collections::HashSet::new();
        for seed in 0..16 {
            let o = Strategy::RandomPart
                .solve(&inst, &mut SolveCtx::seeded(seed))
                .unwrap();
            partitions.insert(o.partition.members().to_vec());
        }
        assert!(partitions.len() > 1, "ctx seed never changed the partition");
    }
}
