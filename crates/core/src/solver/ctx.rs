//! Per-solve context: the RNG, the evaluation scratch, and the knobs a
//! solver may consult.

use crate::eval::{EvalScratch, EvalStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed for `(repetition, point)` pairs, so that changing a
/// sweep's resolution does not reshuffle unrelated repetitions.
///
/// SplitMix64-style mixing: cheap, well distributed, dependency-free. This
/// is the single source of truth for seed derivation across the workspace
/// (`workloads::rng::child_seed` delegates here).
pub fn child_seed(root: u64, repetition: u64, point: u64) -> u64 {
    let mut z = root
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(repetition.wrapping_add(1)))
        .wrapping_add(0x85EB_CA6Bu64.wrapping_mul(point.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt mixed into [`SolveCtx::child`] streams so sub-solver seeds never
/// collide with the batch-level `(repetition, point)` streams.
const CHILD_SALT: u64 = 0x5047_F01A_0C05_11ED;

/// Everything a [`Solver`](super::Solver) receives besides the instance:
/// a deterministically seeded RNG plus per-solve knobs.
///
/// Bundling these keeps the [`Solver::solve`](super::Solver::solve)
/// signature stable — new knobs become fields here instead of parameters
/// threaded through every call site.
#[derive(Debug, Clone)]
pub struct SolveCtx {
    seed: u64,
    rng: StdRng,
    scratch: EvalScratch,
    /// Worker threads a meta-solver (e.g. [`Portfolio`](super::Portfolio))
    /// may fan out on. `1` means run serially; results are identical either
    /// way because sub-solvers always draw from [`Self::child`] seeds.
    pub threads: usize,
}

impl SolveCtx {
    /// A context whose entire random stream is a function of `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(seed),
            scratch: EvalScratch::new(),
            threads: 1,
        }
    }

    /// Returns a copy configured to fan out on `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Installs a recycled [`EvalScratch`] (buffers cleared, capacity and
    /// therefore allocations kept, stats zeroed). Used by
    /// [`solve_batch`](super::solve_batch) to reuse one scratch per worker
    /// across instances; results are bit-identical either way because every
    /// kernel clears its output buffer before writing.
    #[must_use]
    pub fn with_recycled_scratch(mut self, scratch: EvalScratch) -> Self {
        self.scratch = scratch.recycle();
        self
    }

    /// The seed this context was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The context's random stream. Deterministic solvers simply never
    /// touch it.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The reusable evaluation scratch (buffers + [`EvalStats`]).
    pub fn scratch(&mut self) -> &mut EvalScratch {
        &mut self.scratch
    }

    /// Simultaneous access to the RNG and the scratch, for solvers that
    /// interleave random decisions with kernel evaluations.
    pub fn rng_and_scratch(&mut self) -> (&mut StdRng, &mut EvalScratch) {
        (&mut self.rng, &mut self.scratch)
    }

    /// Snapshot of the evaluation counters; pair with
    /// [`EvalStats::since`] to attribute work to one solve.
    pub fn stats(&self) -> EvalStats {
        self.scratch.stats
    }

    /// Takes the scratch out of the context (leaving a fresh one), so a
    /// batch worker can recycle it into the next solve's context.
    pub fn take_scratch(&mut self) -> EvalScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Derives an independent child context for sub-solver `stream`,
    /// carrying the parent's knobs.
    ///
    /// Children depend only on the parent's *seed* (not on how much of the
    /// parent's stream was consumed), which is what makes parallel and
    /// serial meta-solving bit-identical.
    pub fn child(&self, stream: u64) -> SolveCtx {
        SolveCtx::seeded(child_seed(self.seed ^ CHILD_SALT, stream, 0)).with_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt as _;

    #[test]
    fn child_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for rep in 0..50u64 {
            for point in 0..50u64 {
                assert!(seen.insert(child_seed(42, rep, point)));
            }
        }
    }

    #[test]
    fn child_seed_depends_on_root() {
        assert_ne!(child_seed(1, 0, 0), child_seed(2, 0, 0));
    }

    #[test]
    fn ctx_stream_is_reproducible() {
        let a: u64 = SolveCtx::seeded(9).rng().random();
        let b: u64 = SolveCtx::seeded(9).rng().random();
        assert_eq!(a, b);
    }

    #[test]
    fn children_ignore_parent_stream_position() {
        let mut parent = SolveCtx::seeded(5);
        let before: u64 = parent.child(3).rng().random();
        let _: u64 = parent.rng().random();
        let after: u64 = parent.child(3).rng().random();
        assert_eq!(before, after);
        let sibling: u64 = parent.child(4).rng().random();
        assert_ne!(before, sibling);
    }

    #[test]
    fn children_inherit_knobs() {
        let parent = SolveCtx::seeded(1).with_threads(4);
        let child = parent.child(0);
        assert_eq!(child.threads, 4);
    }

    #[test]
    fn recycled_scratch_keeps_capacity_but_not_state() {
        let mut ctx = SolveCtx::seeded(1);
        ctx.scratch().costs.extend([1.0, 2.0, 3.0]);
        ctx.scratch().stats.record(3);
        let scratch = ctx.take_scratch();
        assert_eq!(ctx.stats(), crate::eval::EvalStats::default());
        let cap = scratch.costs.capacity();
        let mut next = SolveCtx::seeded(2).with_recycled_scratch(scratch);
        assert_eq!(next.stats(), crate::eval::EvalStats::default());
        assert!(next.scratch().costs.is_empty());
        assert!(next.scratch().costs.capacity() >= cap);
        let (_rng, scratch) = next.rng_and_scratch();
        scratch.stats.record(1);
        assert_eq!(next.stats().kernel_calls, 1);
    }

    #[test]
    fn child_streams_avoid_batch_streams() {
        // A child's seed differs from every plain child_seed the batch
        // layer would hand out for small (rep, point) pairs.
        let ctx = SolveCtx::seeded(0xC0FF_EE00);
        for stream in 0..8u64 {
            let child = ctx.child(stream);
            for rep in 0..64u64 {
                for point in 0..64u64 {
                    assert_ne!(child.seed(), child_seed(0xC0FF_EE00, rep, point));
                }
            }
        }
    }
}
