//! The open solver API: [`Instance`] → [`Solver`] → [`Outcome`].
//!
//! The paper frames co-scheduling as *given applications, a platform, and
//! an objective, produce a (processors, cache-fraction) assignment
//! minimising the makespan*. This module is that framing as an API:
//!
//! * [`Instance`] — applications + platform, validated **once**, with the
//!   per-application execution models precomputed and cached;
//! * [`Solver`] — anything that maps an instance to an [`Outcome`]; the
//!   ten paper strategies implement it (via the thin
//!   [`Strategy`](crate::algo::Strategy) enum), and downstream crates can
//!   add their own without touching this crate;
//! * [`SolveCtx`] — the RNG and per-solve knobs, bundled so the `solve`
//!   signature never has to change again;
//! * [`by_name`] / [`all`] / [`names`] — a string-keyed registry covering
//!   every paper legend name plus CLI aliases;
//! * [`Portfolio`] — a meta-solver running many solvers (optionally in
//!   parallel) and keeping the best schedule;
//! * [`solve_batch`] — deterministic seeded fan-out over many instances,
//!   the engine under the experiment harness' sweeps.
//!
//! # Example
//!
//! ```
//! use coschedule::model::{Application, Platform};
//! use coschedule::solver::{self, Instance, SolveCtx};
//!
//! let instance = Instance::new(
//!     vec![
//!         Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
//!         Application::new("BT", 2.10e11, 0.05, 0.829, 7.31e-3),
//!     ],
//!     Platform::taihulight(),
//! )
//! .unwrap();
//!
//! let dmr = solver::by_name("DominantMinRatio").unwrap();
//! let outcome = dmr.solve(&instance, &mut SolveCtx::seeded(42)).unwrap();
//! assert!(outcome.makespan.is_finite() && outcome.makespan > 0.0);
//! ```

use crate::algo::{Outcome, Strategy};
use crate::error::Result;

mod batch;
mod ctx;
mod instance;
mod portfolio;
mod strategies;

pub use batch::{batch_eval_stats, solve_batch, BatchSpec, InstanceSource};
pub use ctx::{child_seed, SolveCtx};
pub use instance::Instance;
pub use portfolio::{MemberOutcome, Portfolio, PortfolioOutcome};

/// A complete co-scheduling algorithm: maps a validated [`Instance`] to an
/// [`Outcome`] (cache partition, processor split, makespan).
///
/// Implementations must be deterministic given the [`SolveCtx`] seed; all
/// randomness must come from [`SolveCtx::rng`]. `Send + Sync` lets
/// [`Portfolio`] and [`solve_batch`] fan solvers out across threads.
pub trait Solver: Send + Sync {
    /// Display name, matching the paper's figure legends where one exists
    /// (e.g. `DominantMinRatio`, `0cache`).
    fn name(&self) -> String;

    /// `true` iff the solver makes random decisions (its outcome depends
    /// on the [`SolveCtx`] seed and sweeps should average repetitions).
    fn is_randomized(&self) -> bool {
        false
    }

    /// Solves `instance`, drawing any randomness from `ctx`.
    fn solve(&self, instance: &Instance, ctx: &mut SolveCtx) -> Result<Outcome>;
}

/// Every registered solver, in the paper's legend order: the six dominant
/// heuristics, RandomPart, Fair, 0cache, AllProcCache, and the
/// DominantRefined extension.
pub fn all() -> Vec<Box<dyn Solver>> {
    let mut v: Vec<Box<dyn Solver>> = Strategy::all_coscheduling()
        .into_iter()
        .map(|s| s.to_solver())
        .collect();
    v.push(Strategy::AllProcCache.to_solver());
    v.push(Strategy::refined().to_solver());
    v
}

/// Names addressable through [`by_name`], canonical spellings only: the
/// individual solvers first, then `exact` and the meta-solvers
/// `Portfolio` and `auto`.
pub fn names() -> Vec<String> {
    let mut v: Vec<String> = all().iter().map(|s| s.name()).collect();
    v.push("exact".to_string());
    v.push("Portfolio".to_string());
    v.push("auto".to_string());
    v
}

/// One-line human description of a registered solver name, for
/// `cosched --list-strategies` and other help surfaces. Unknown names get
/// a generic line rather than an error so the function can never lag the
/// registry.
pub fn describe(name: &str) -> &'static str {
    match name.trim().to_ascii_lowercase().as_str() {
        "dominantrandom" => "Algorithm 1 (forward build), random candidate choice",
        "dominantminratio" => "Algorithm 1 (forward build), smallest dominance ratio first",
        "dominantmaxratio" => "Algorithm 1 (forward build), largest dominance ratio first",
        "dominantrevrandom" => "Algorithm 2 (reverse trim), random candidate choice",
        "dominantrevminratio" => "Algorithm 2 (reverse trim), smallest dominance ratio first",
        "dominantrevmaxratio" => "Algorithm 2 (reverse trim), largest dominance ratio first",
        "randompart" => "baseline: uniformly random cache-sharing subset",
        "fair" => "baseline: every application gets an equal cache share",
        "0cache" => "baseline: nobody gets cache, processors split by Eq. 2",
        "allproccache" => "baseline: applications run one at a time with all resources",
        "dominantrefined" => "DominantMinRatio plus local-search refinement (§6.4)",
        "exact" | "bnb" => {
            "branch-and-bound proven optimum (budget flags: --nodes, --millis, --threads); \
             returns its best incumbent with optimal=false when the budget runs out"
        }
        "portfolio" => "meta: runs every solver and keeps the best outcome",
        "auto" => "meta: bandit autotuner that learns the best solver per workload",
        _ => "registered solver (no description)",
    }
}

/// Looks a solver up by name.
///
/// Lookups are normalized — surrounding whitespace is trimmed and the
/// comparison is case-insensitive — so the names users type at a CLI or
/// send over the `cosched serve` wire resolve without ceremony. Accepts
/// every paper legend name (`DominantMinRatio`, `DominantRevMaxRatio`,
/// `RandomPart`, `Fair`, `0cache`, `AllProcCache`, `DominantRefined`), the
/// historical CLI aliases (`dmr`, `refined`, `zerocache`, `seq`),
/// `exact` (alias `bnb` — the branch-and-bound
/// [`BnbSolver`](crate::algo::BnbSolver) with default budgets),
/// `Portfolio` (a [`Portfolio`] over [`all`]), and `auto` (a **fresh**
/// [`Auto`](crate::tune::Auto) autotuner over [`all`] — its learning
/// lives as long as the returned solver instance; a
/// [`Session`](crate::session::Session) instead shares one tuner across
/// all its resolves).
///
/// # Errors
/// [`CoschedError::UnknownSolver`](crate::error::CoschedError::UnknownSolver)
/// carrying the offending name and the full list of accepted names, so
/// callers can render a useful message without consulting the registry
/// themselves.
pub fn by_name(name: &str) -> Result<Box<dyn Solver>> {
    let wanted = name.trim();
    for s in all() {
        if s.name().eq_ignore_ascii_case(wanted) {
            return Ok(s);
        }
    }
    match wanted.to_ascii_lowercase().as_str() {
        "dmr" => Ok(Strategy::dominant(
            crate::algo::BuildOrder::Forward,
            crate::algo::Choice::MinRatio,
        )
        .to_solver()),
        "refined" => Ok(Strategy::refined().to_solver()),
        "zerocache" => Ok(Strategy::ZeroCache.to_solver()),
        "seq" | "sequential" => Ok(Strategy::AllProcCache.to_solver()),
        "exact" | "bnb" => Ok(Box::new(crate::algo::BnbSolver::new())),
        "portfolio" => Ok(Box::new(Portfolio::new(all()))),
        "auto" => Ok(Box::new(crate::tune::Auto::new())),
        _ => Err(crate::error::CoschedError::UnknownSolver {
            name: name.to_string(),
            available: names(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Application, Platform};

    fn instance() -> Instance {
        let apps = vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3),
            Application::new("LU", 1.52e11, 0.07, 0.750, 1.51e-3),
        ];
        Instance::new(apps, Platform::taihulight()).unwrap()
    }

    #[test]
    fn registry_covers_all_legend_names() {
        let expected = [
            "DominantRandom",
            "DominantMinRatio",
            "DominantMaxRatio",
            "DominantRevRandom",
            "DominantRevMinRatio",
            "DominantRevMaxRatio",
            "RandomPart",
            "Fair",
            "0cache",
            "AllProcCache",
            "DominantRefined",
        ];
        let names: Vec<String> = all().iter().map(|s| s.name()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn by_name_round_trips_every_registered_solver() {
        let inst = instance();
        for s in all() {
            let looked_up = by_name(&s.name())
                .unwrap_or_else(|e| panic!("{} not addressable by name: {e}", s.name()));
            assert_eq!(looked_up.name(), s.name());
            assert_eq!(looked_up.is_randomized(), s.is_randomized());
            let a = looked_up.solve(&inst, &mut SolveCtx::seeded(7)).unwrap();
            let b = s.solve(&inst, &mut SolveCtx::seeded(7)).unwrap();
            assert_eq!(a, b, "{} behaves differently after lookup", s.name());
        }
    }

    #[test]
    fn lookup_is_normalized_and_knows_aliases() {
        for (alias, canonical) in [
            ("dominantminratio", "DominantMinRatio"),
            ("dmr", "DominantMinRatio"),
            (" dmr ", "DominantMinRatio"),
            ("FAIR", "Fair"),
            ("Fair\n", "Fair"),
            ("0cache", "0cache"),
            ("zerocache", "0cache"),
            ("seq", "AllProcCache"),
            ("refined", "DominantRefined"),
            ("\tPortfolio ", "Portfolio"),
            ("AUTO", "auto"),
            (" auto ", "auto"),
            ("exact", "exact"),
            ("EXACT", "exact"),
            ("bnb", "exact"),
        ] {
            assert_eq!(by_name(alias).unwrap().name(), canonical, "alias {alias:?}");
        }
    }

    #[test]
    fn unknown_names_report_the_available_registry() {
        match by_name("no-such-solver") {
            Err(crate::error::CoschedError::UnknownSolver { name, available }) => {
                assert_eq!(name, "no-such-solver");
                assert_eq!(available, names());
            }
            other => panic!("unexpected: {:?}", other.map(|s| s.name())),
        }
    }

    #[test]
    fn names_lists_individual_solvers_then_meta_solvers() {
        let n = names();
        assert_eq!(n.last().map(String::as_str), Some("auto"));
        assert_eq!(n[n.len() - 2].as_str(), "Portfolio");
        assert_eq!(n[n.len() - 3].as_str(), "exact");
        assert_eq!(n.len(), all().len() + 3);
        for name in &n {
            assert!(by_name(name).is_ok(), "{name} not resolvable");
        }
    }

    #[test]
    fn every_registered_name_has_a_specific_description() {
        for name in names() {
            let d = describe(&name);
            assert!(
                d != "registered solver (no description)",
                "{name} lacks a description"
            );
        }
        assert_eq!(describe("exact"), describe("bnb"));
    }
}
