//! A validated co-scheduling problem instance.

use crate::error::Result;
use crate::eval::EvalSet;
use crate::model::{Application, ExecModel, Platform};

/// A co-scheduling problem: applications plus the platform they share.
///
/// Construction validates every application and the platform **once** and
/// precomputes the per-application [`ExecModel`]s, so an `Instance` can be
/// handed to any number of [`Solver`](super::Solver)s (or to a
/// [`Portfolio`](super::Portfolio), or across a
/// [`solve_batch`](super::solve_batch) fan-out) without re-deriving them —
/// the `Strategy::run` entry point of earlier revisions re-ran both on
/// every call.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    apps: Vec<Application>,
    platform: Platform,
    models: Vec<ExecModel>,
    eval: EvalSet,
}

impl Instance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    /// Returns the first validation error: an empty application list, an
    /// application parameter out of its documented domain, or an invalid
    /// platform.
    pub fn new(apps: Vec<Application>, platform: Platform) -> Result<Self> {
        crate::model::validate_instance(&apps)?;
        platform.validate()?;
        let models = ExecModel::of_all(&apps, &platform);
        let eval = EvalSet::from_models(&apps, &platform, &models);
        Ok(Self {
            apps,
            platform,
            models,
            eval,
        })
    }

    /// The applications, in input order.
    pub fn apps(&self) -> &[Application] {
        &self.apps
    }

    /// The shared platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The precomputed Theorem-3 / dominance quantities, aligned with
    /// [`Self::apps`].
    pub fn models(&self) -> &[ExecModel] {
        &self.models
    }

    /// The cached struct-of-arrays view the batched Eq. 2 kernels run on
    /// (see [`crate::eval`]), derived once at construction.
    pub fn eval(&self) -> &EvalSet {
        &self.eval
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Always `false` — construction rejects empty instances. Provided for
    /// API completeness alongside [`Self::len`].
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoschedError;

    fn apps() -> Vec<Application> {
        vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3),
        ]
    }

    #[test]
    fn construction_precomputes_models() {
        let platform = Platform::taihulight();
        let inst = Instance::new(apps(), platform.clone()).unwrap();
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
        assert_eq!(inst.models(), ExecModel::of_all(&apps(), &platform));
        assert_eq!(inst.eval(), &EvalSet::of(&apps(), &platform));
        assert_eq!(inst.platform(), &platform);
        assert_eq!(inst.apps(), &apps()[..]);
    }

    #[test]
    fn empty_instance_is_rejected() {
        let err = Instance::new(vec![], Platform::taihulight()).unwrap_err();
        assert_eq!(err, CoschedError::EmptyInstance);
    }

    #[test]
    fn invalid_application_is_rejected() {
        let mut a = apps();
        a[1].work = -1.0;
        let err = Instance::new(a, Platform::taihulight()).unwrap_err();
        assert!(matches!(
            err,
            CoschedError::InvalidApplication { index: 1, .. }
        ));
    }

    #[test]
    fn invalid_platform_is_rejected() {
        let platform = Platform::taihulight().with_processors(0.0);
        let err = Instance::new(apps(), platform).unwrap_err();
        assert!(matches!(err, CoschedError::InvalidPlatform(_)));
    }
}
