//! A validated co-scheduling problem instance.

use crate::error::Result;
use crate::eval::EvalSet;
use crate::model::{Application, ExecModel, Platform};

/// A co-scheduling problem: applications plus the platform they share.
///
/// Construction validates every application and the platform **once** and
/// precomputes the per-application [`ExecModel`]s, so an `Instance` can be
/// handed to any number of [`Solver`](super::Solver)s (or to a
/// [`Portfolio`](super::Portfolio), or across a
/// [`solve_batch`](super::solve_batch) fan-out) without re-deriving them —
/// the `Strategy::run` entry point of earlier revisions re-ran both on
/// every call.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    apps: Vec<Application>,
    platform: Platform,
    models: Vec<ExecModel>,
    eval: EvalSet,
}

impl Instance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    /// Returns the first validation error: an empty application list, an
    /// application parameter out of its documented domain, or an invalid
    /// platform.
    pub fn new(apps: Vec<Application>, platform: Platform) -> Result<Self> {
        crate::model::validate_instance(&apps)?;
        platform.validate()?;
        let models = ExecModel::of_all(&apps, &platform);
        let eval = EvalSet::from_models(&apps, &platform, &models);
        Ok(Self {
            apps,
            platform,
            models,
            eval,
        })
    }

    /// The applications, in input order.
    pub fn apps(&self) -> &[Application] {
        &self.apps
    }

    /// The shared platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The precomputed Theorem-3 / dominance quantities, aligned with
    /// [`Self::apps`].
    pub fn models(&self) -> &[ExecModel] {
        &self.models
    }

    /// The cached struct-of-arrays view the batched Eq. 2 kernels run on
    /// (see [`crate::eval`]), derived once at construction.
    pub fn eval(&self) -> &EvalSet {
        &self.eval
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Always `false` — construction rejects empty instances. Provided for
    /// API completeness alongside [`Self::len`].
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    // ---- incremental patch operations (the `crate::session` layer) ----
    //
    // Each op validates only what changed and patches the cached models
    // and `EvalSet` columns with exactly the expressions construction
    // uses, so a patched instance is `==` (bit-identical derived state)
    // to `Instance::new` on the mutated inputs. The non-empty invariant
    // is preserved: the last application can never be removed.

    /// Appends `app`, patching one model/eval column in place.
    ///
    /// # Errors
    /// The application's own validation error (the rest of the instance is
    /// already validated and untouched).
    pub(crate) fn push_app(&mut self, app: Application) -> Result<usize> {
        let index = self.apps.len();
        app.validate(index)?;
        let model = ExecModel::of(&app, &self.platform);
        self.eval.push_column(&app, &self.platform, &model);
        self.models.push(model);
        self.apps.push(app);
        Ok(index)
    }

    /// Removes the application at `index`, returning it.
    ///
    /// # Errors
    /// [`CoschedError::IndexOutOfRange`] for a bad index;
    /// [`CoschedError::EmptyInstance`] when it would remove the last
    /// application (instances are non-empty by construction).
    pub(crate) fn remove_app(&mut self, index: usize) -> Result<Application> {
        if index >= self.apps.len() {
            return Err(crate::error::CoschedError::IndexOutOfRange {
                index,
                len: self.apps.len(),
            });
        }
        if self.apps.len() == 1 {
            return Err(crate::error::CoschedError::EmptyInstance);
        }
        self.models.remove(index);
        self.eval.remove_column(index);
        Ok(self.apps.remove(index))
    }

    /// Replaces the application at `index`, returning the old one.
    ///
    /// # Errors
    /// [`CoschedError::IndexOutOfRange`] for a bad index, or the new
    /// application's validation error.
    pub(crate) fn replace_app(&mut self, index: usize, app: Application) -> Result<Application> {
        if index >= self.apps.len() {
            return Err(crate::error::CoschedError::IndexOutOfRange {
                index,
                len: self.apps.len(),
            });
        }
        app.validate(index)?;
        let model = ExecModel::of(&app, &self.platform);
        self.eval.set_column(index, &app, &self.platform, &model);
        self.models[index] = model;
        Ok(std::mem::replace(&mut self.apps[index], app))
    }

    /// Swaps the platform, re-deriving **all** cached state (every model
    /// and eval column depends on it) — the cold path of the session API.
    ///
    /// # Errors
    /// The platform's validation error; the instance is untouched on
    /// failure.
    pub(crate) fn swap_platform(&mut self, platform: Platform) -> Result<()> {
        platform.validate()?;
        self.models = ExecModel::of_all(&self.apps, &platform);
        self.eval = EvalSet::from_models(&self.apps, &platform, &self.models);
        self.platform = platform;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoschedError;

    fn apps() -> Vec<Application> {
        vec![
            Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4),
            Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3),
        ]
    }

    #[test]
    fn construction_precomputes_models() {
        let platform = Platform::taihulight();
        let inst = Instance::new(apps(), platform.clone()).unwrap();
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
        assert_eq!(inst.models(), ExecModel::of_all(&apps(), &platform));
        assert_eq!(inst.eval(), &EvalSet::of(&apps(), &platform));
        assert_eq!(inst.platform(), &platform);
        assert_eq!(inst.apps(), &apps()[..]);
    }

    #[test]
    fn empty_instance_is_rejected() {
        let err = Instance::new(vec![], Platform::taihulight()).unwrap_err();
        assert_eq!(err, CoschedError::EmptyInstance);
    }

    #[test]
    fn invalid_application_is_rejected() {
        let mut a = apps();
        a[1].work = -1.0;
        let err = Instance::new(a, Platform::taihulight()).unwrap_err();
        assert!(matches!(
            err,
            CoschedError::InvalidApplication { index: 1, .. }
        ));
    }

    #[test]
    fn invalid_platform_is_rejected() {
        let platform = Platform::taihulight().with_processors(0.0);
        let err = Instance::new(apps(), platform).unwrap_err();
        assert!(matches!(err, CoschedError::InvalidPlatform(_)));
    }

    #[test]
    fn patched_instance_equals_full_rebuild() {
        let platform = Platform::taihulight();
        let mut inst = Instance::new(apps(), platform.clone()).unwrap();
        let lu = Application::new("LU", 1.52e11, 0.07, 0.750, 1.51e-3);

        assert_eq!(inst.push_app(lu.clone()).unwrap(), 2);
        let mut expected_apps = apps();
        expected_apps.push(lu.clone());
        assert_eq!(
            inst,
            Instance::new(expected_apps.clone(), platform.clone()).unwrap()
        );

        let updated = lu.clone().with_seq_fraction(0.2).with_footprint(1e9);
        let old = inst.replace_app(0, updated.clone()).unwrap();
        assert_eq!(old.name, "CG");
        expected_apps[0] = updated;
        assert_eq!(
            inst,
            Instance::new(expected_apps.clone(), platform.clone()).unwrap()
        );

        let removed = inst.remove_app(1).unwrap();
        assert_eq!(removed.name, "BT");
        expected_apps.remove(1);
        assert_eq!(
            inst,
            Instance::new(expected_apps.clone(), platform.clone()).unwrap()
        );

        let small = platform.with_cache_size(1e9);
        inst.swap_platform(small.clone()).unwrap();
        assert_eq!(inst, Instance::new(expected_apps, small).unwrap());
    }

    #[test]
    fn patch_ops_reject_bad_inputs_without_mutating() {
        let mut inst = Instance::new(apps(), Platform::taihulight()).unwrap();
        let before = inst.clone();
        let mut bad = apps().remove(0);
        bad.work = -1.0;
        assert!(matches!(
            inst.push_app(bad.clone()),
            Err(CoschedError::InvalidApplication { index: 2, .. })
        ));
        assert!(matches!(
            inst.replace_app(0, bad),
            Err(CoschedError::InvalidApplication { index: 0, .. })
        ));
        assert!(matches!(
            inst.remove_app(7),
            Err(CoschedError::IndexOutOfRange { index: 7, len: 2 })
        ));
        assert!(matches!(
            inst.swap_platform(Platform::taihulight().with_processors(-1.0)),
            Err(CoschedError::InvalidPlatform(_))
        ));
        assert_eq!(inst, before, "failed ops must leave the instance intact");
    }

    #[test]
    fn removing_the_last_app_is_rejected() {
        let mut inst = Instance::new(vec![apps().remove(0)], Platform::taihulight()).unwrap();
        assert_eq!(inst.remove_app(0).unwrap_err(), CoschedError::EmptyInstance);
        assert_eq!(inst.len(), 1, "instance must stay intact");
    }
}
