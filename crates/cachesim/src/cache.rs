//! Set-associative cache core.

use crate::policy::{Policy, ReplacementState};
use crate::stats::AccessStats;

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `line_size · ways · sets` for a
    /// power-of-two number of sets (the constructor rounds sets down to a
    /// power of two).
    pub size_bytes: u64,
    /// Cache-line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity (1 = direct mapped; ≤ 64).
    pub ways: usize,
    /// Replacement policy.
    pub policy: Policy,
}

impl CacheConfig {
    /// A fully-associative configuration of the given capacity (capped at
    /// 64 ways: larger caches degrade to 64-way set-associative). Under a
    /// truly fully-associative geometry LRU obeys the stack-inclusion
    /// property; this is the geometry used for miss-curve measurement.
    pub fn fully_associative(size_bytes: u64, line_size: u64, policy: Policy) -> Self {
        let lines = (size_bytes / line_size).max(1) as usize;
        Self {
            size_bytes,
            line_size,
            ways: lines.min(64),
            policy,
        }
    }
}

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting
    /// `evicted`).
    Miss {
        /// Address of the evicted line (line-aligned), if any.
        evicted: Option<u64>,
    },
    /// The line was absent and could **not** be filled because the way
    /// mask was empty (partition with zero ways): the access bypasses the
    /// cache.
    Bypass,
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, Self::Hit)
    }
}

/// A set-associative cache with way-masked fills.
///
/// Lookups search **all** ways of the set (as on real CAT hardware, where a
/// partition may still hit on lines it cached before a mask change); fills
/// are restricted to the caller's way mask.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: usize,
    set_shift: u32,
    set_mask: u64,
    /// Tag (full line address) per (set, way); `None` = invalid.
    tags: Vec<Option<u64>>,
    replacement: ReplacementState,
    stats: AccessStats,
}

impl SetAssocCache {
    /// Builds a cache. The number of sets is
    /// `size / (line_size · ways)` rounded **down** to a power of two
    /// (at least 1).
    ///
    /// # Panics
    /// Panics on zero sizes, non-power-of-two line size, or `ways` outside
    /// `1..=64`.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_seed(config, 0x5EED)
    }

    /// Like [`Self::new`] with an explicit seed for the Random policy.
    pub fn with_seed(config: CacheConfig, seed: u64) -> Self {
        assert!(config.line_size.is_power_of_two(), "line size must be 2^k");
        assert!(
            config.size_bytes >= config.line_size,
            "cache smaller than a line"
        );
        assert!((1..=64).contains(&config.ways), "ways must be in 1..=64");
        let raw_sets = (config.size_bytes / (config.line_size * config.ways as u64)).max(1);
        let sets =
            (raw_sets as usize).next_power_of_two() >> usize::from(!raw_sets.is_power_of_two());
        let sets = sets.max(1);
        Self {
            config,
            sets,
            set_shift: config.line_size.trailing_zeros(),
            set_mask: sets as u64 - 1,
            tags: vec![None; sets * config.ways],
            replacement: ReplacementState::new(config.policy, sets, config.ways, seed),
            stats: AccessStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets actually instantiated.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Effective capacity in bytes (`sets · ways · line_size`), which may
    /// be below `config.size_bytes` after power-of-two rounding.
    pub fn effective_bytes(&self) -> u64 {
        self.sets as u64 * self.config.ways as u64 * self.config.line_size
    }

    /// Aggregate statistics since construction (or the last reset).
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Clears statistics but keeps contents (for warm-up phases).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Full way mask for this associativity.
    pub fn full_mask(&self) -> u64 {
        if self.config.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.ways) - 1
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.set_shift
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Accesses `addr` with the full way mask.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.access_masked(addr, self.full_mask())
    }

    /// Accesses `addr`; on a miss, the fill victim is chosen within
    /// `mask`. An empty mask turns misses into bypasses.
    pub fn access_masked(&mut self, addr: u64, mask: u64) -> AccessOutcome {
        let mask = mask & self.full_mask();
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let base = set * self.config.ways;

        // Lookup across all ways.
        for way in 0..self.config.ways {
            if self.tags[base + way] == Some(line) {
                self.replacement.on_touch(set, way, false);
                self.stats.record_hit();
                return AccessOutcome::Hit;
            }
        }
        self.stats.record_miss();
        if mask == 0 {
            return AccessOutcome::Bypass;
        }
        // Prefer an invalid way inside the mask.
        let victim = (0..self.config.ways)
            .find(|w| mask >> w & 1 == 1 && self.tags[base + w].is_none())
            .unwrap_or_else(|| self.replacement.victim(set, mask));
        let evicted = self.tags[base + victim].map(|l| l << self.set_shift);
        self.tags[base + victim] = Some(line);
        self.replacement.on_touch(set, victim, true);
        AccessOutcome::Miss { evicted }
    }

    /// `true` iff the line containing `addr` is currently cached.
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let base = set * self.config.ways;
        (0..self.config.ways).any(|w| self.tags[base + w] == Some(line))
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    /// Invalidates all contents (statistics are kept).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small(policy: Policy) -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            size_bytes: 4 * 64 * 4, // 4 sets, 4 ways
            line_size: 64,
            ways: 4,
            policy,
        })
    }

    #[test]
    fn geometry() {
        let c = small(Policy::Lru);
        assert_eq!(c.sets(), 4);
        assert_eq!(c.effective_bytes(), 1024);
        assert_eq!(c.full_mask(), 0b1111);
    }

    #[test]
    fn sets_round_down_to_power_of_two() {
        let c = SetAssocCache::new(CacheConfig {
            size_bytes: 3 * 64 * 2, // raw sets = 3 -> 2
            line_size: 64,
            ways: 2,
            policy: Policy::Lru,
        });
        assert_eq!(c.sets(), 2);
        assert!(c.effective_bytes() <= 3 * 64 * 2);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small(Policy::Lru);
        assert!(matches!(c.access(0x1000), AccessOutcome::Miss { .. }));
        assert!(c.access(0x1000).is_hit());
        // Same line, different byte.
        assert!(c.access(0x1004).is_hit());
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn capacity_eviction_with_lru() {
        let mut c = small(Policy::Lru);
        // Fill set 0 (addresses that map to set 0: line % 4 == 0).
        let addrs: Vec<u64> = (0..5).map(|i| i * 4 * 64).collect();
        for &a in &addrs[..4] {
            c.access(a);
        }
        assert!(c.contains(addrs[0]));
        // Fifth distinct line in the same set evicts the LRU (addrs[0]).
        let out = c.access(addrs[4]);
        match out {
            AccessOutcome::Miss { evicted: Some(e) } => assert_eq!(e, addrs[0]),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(!c.contains(addrs[0]));
        assert!(c.contains(addrs[4]));
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = small(Policy::Lru);
        let set0 = |i: u64| i * 4 * 64;
        for i in 0..4 {
            c.access(set0(i));
        }
        c.access(set0(0)); // refresh
        c.access(set0(9)); // evicts line 1, not 0
        assert!(c.contains(set0(0)));
        assert!(!c.contains(set0(1)));
    }

    #[test]
    fn masked_fill_restricts_victims() {
        let mut c = small(Policy::Lru);
        let set0 = |i: u64| i * 4 * 64;
        // Fill ways 0..4.
        for i in 0..4 {
            c.access(set0(i));
        }
        // New line may only replace ways 0 or 1.
        c.access_masked(set0(10), 0b0011);
        // Lines in ways 2, 3 (filled last) must still be present.
        assert!(c.contains(set0(2)));
        assert!(c.contains(set0(3)));
    }

    #[test]
    fn empty_mask_bypasses() {
        let mut c = small(Policy::Lru);
        assert_eq!(c.access_masked(0x40, 0), AccessOutcome::Bypass);
        assert!(!c.contains(0x40));
        assert_eq!(c.stats().misses, 1);
        // Still bypasses on repeat: nothing was filled.
        assert_eq!(c.access_masked(0x40, 0), AccessOutcome::Bypass);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small(Policy::Lru);
        c.access(0x40);
        assert_eq!(c.occupancy(), 1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0x40));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 4 * 64,
            line_size: 64,
            ways: 1,
            policy: Policy::Lru,
        });
        // Two lines mapping to the same set ping-pong forever.
        for _ in 0..10 {
            assert!(!c.access(0).is_hit());
            assert!(!c.access(4 * 64).is_hit());
        }
    }

    #[test]
    fn all_policies_run_a_mixed_trace() {
        for policy in Policy::ALL {
            let mut c = small(policy);
            for i in 0..10_000u64 {
                c.access((i * 97) % 4096 * 64);
            }
            let s = c.stats();
            assert_eq!(s.accesses, 10_000, "{}", policy.name());
            assert_eq!(s.hits + s.misses, s.accesses);
        }
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_state_misses() {
        // 16 lines fit exactly into the 16-line cache: after one pass, all
        // accesses hit under LRU.
        let mut c = small(Policy::Lru);
        let lines: Vec<u64> = (0..16).map(|i| i * 64).collect();
        for &a in &lines {
            c.access(a);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(c.access(a).is_hit());
            }
        }
        assert_eq!(c.stats().misses, 0);
    }

    proptest! {
        #[test]
        fn hits_plus_misses_equals_accesses(
            addrs in prop::collection::vec(0u64..1 << 20, 1..500),
            policy_idx in 0usize..4,
        ) {
            let mut c = small(Policy::ALL[policy_idx]);
            for &a in &addrs {
                c.access(a);
            }
            let s = *c.stats();
            prop_assert_eq!(s.accesses, addrs.len() as u64);
            prop_assert_eq!(s.hits + s.misses, s.accesses);
        }

        #[test]
        fn occupancy_never_exceeds_capacity(
            addrs in prop::collection::vec(0u64..1 << 24, 1..1000),
        ) {
            let mut c = small(Policy::Lru);
            for &a in &addrs {
                c.access(a);
            }
            prop_assert!(c.occupancy() <= 16);
        }

        #[test]
        fn contains_agrees_with_hit(
            addrs in prop::collection::vec(0u64..1 << 16, 2..300),
        ) {
            let mut c = small(Policy::Fifo);
            for w in addrs.windows(2) {
                c.access(w[0]);
                let predicted = c.contains(w[1]);
                prop_assert_eq!(c.access(w[1]).is_hit(), predicted);
            }
        }

        #[test]
        fn bigger_lru_cache_never_misses_more_fully_associative(
            addrs in prop::collection::vec(0u64..(1 << 14), 50..400),
        ) {
            // LRU stack-inclusion property (fully associative geometry).
            let mut small_c = SetAssocCache::new(CacheConfig::fully_associative(
                8 * 64, 64, Policy::Lru,
            ));
            let mut big_c = SetAssocCache::new(CacheConfig::fully_associative(
                32 * 64, 64, Policy::Lru,
            ));
            for &a in &addrs {
                small_c.access(a);
                big_c.access(a);
            }
            prop_assert!(big_c.stats().misses <= small_c.stats().misses);
        }
    }
}
