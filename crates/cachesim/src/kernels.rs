//! NPB-like synthetic application kernels.
//!
//! The paper's Table 2 characterises six NAS Parallel Benchmarks by three
//! numbers measured with PEBIL instrumentation: operation count `w`,
//! access frequency `f` and miss rate on a 40 MB LLC. We cannot run the
//! real binaries here, so this module provides six synthetic kernels whose
//! access patterns mimic the corresponding NPB codes, and a measurement
//! routine that regenerates an analogous table through the cache
//! simulator. Absolute values differ from the paper (different inputs,
//! different machine), but the *pipeline* — instrument, simulate a
//! reference LLC, extract `(w, f, m)` — is reproduced end to end.

use crate::powerlaw::{fit_power_law, measure_miss_curve, PowerLawFit};
use crate::trace::Pattern;

/// A synthetic application kernel: a compute/access profile plus a memory
/// reference pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name (matches the NPB benchmark it imitates).
    pub name: &'static str,
    /// What the kernel models.
    pub description: &'static str,
    /// Operation count `w` the kernel represents (scaled-down stand-in for
    /// the NPB CLASS=A counts).
    pub ops: u64,
    /// Data accesses per operation (`f`).
    pub access_freq: f64,
    /// The memory reference pattern.
    pub pattern: Pattern,
}

impl KernelSpec {
    /// Number of memory accesses the kernel issues (`ops · f`).
    pub fn accesses(&self) -> u64 {
        (self.ops as f64 * self.access_freq).round() as u64
    }
}

/// Scale factor controlling kernel footprints and lengths, so tests can run
/// the suite in milliseconds while examples use more realistic sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelScale {
    /// Tiny: footprints of a few thousand lines (unit tests).
    Test,
    /// Small: around a hundred thousand lines (examples, benches).
    Demo,
}

impl KernelScale {
    fn lines(self, base: u64) -> u64 {
        match self {
            Self::Test => base,
            Self::Demo => base * 16,
        }
    }

    fn ops(self, base: u64) -> u64 {
        match self {
            Self::Test => base,
            Self::Demo => base * 8,
        }
    }
}

/// The six NPB-like kernels.
///
/// Pattern rationale (cf. Table 1 descriptions):
/// * **CG** — sparse matrix-vector products: streaming vectors mixed with
///   Zipf-distributed gathers into the sparse matrix;
/// * **BT** — block-tridiagonal line sweeps: long strided scans over a
///   large footprint;
/// * **LU** — triangular solves: streaming over a large footprint with a
///   reused wavefront (Pareto reuse);
/// * **SP** — scalar pentadiagonal sweeps: like BT with a wider stride and
///   a larger footprint (hence the higher miss rate in Table 2);
/// * **MG** — multigrid V-cycles: a mixture of streams over geometrically
///   shrinking grids, the coarse levels fitting in cache;
/// * **FT** — 3-D FFT: power-of-two strided butterflies plus streaming.
pub fn npb_like_kernels(scale: KernelScale) -> Vec<KernelSpec> {
    let l = |base: u64| scale.lines(base);
    vec![
        KernelSpec {
            name: "CG",
            description: "sparse SpMV: streaming vectors + Zipf gathers",
            ops: scale.ops(120_000),
            access_freq: 0.54,
            pattern: Pattern::Mix(vec![
                (
                    0.45,
                    Pattern::Stream {
                        footprint_lines: l(2_048),
                    },
                ),
                (
                    0.55,
                    Pattern::Zipf {
                        footprint_lines: l(16_384),
                        exponent: 1.1,
                    },
                ),
            ]),
        },
        KernelSpec {
            name: "BT",
            description: "block-tridiagonal line sweeps",
            ops: scale.ops(200_000),
            access_freq: 0.83,
            pattern: Pattern::Strided {
                footprint_lines: l(24_576),
                stride_lines: 5,
            },
        },
        KernelSpec {
            name: "LU",
            description: "triangular solves with a reused wavefront",
            ops: scale.ops(180_000),
            access_freq: 0.75,
            pattern: Pattern::Mix(vec![
                (0.6, Pattern::pareto(0.55, 24.0)),
                (
                    0.4,
                    Pattern::Stream {
                        footprint_lines: l(12_288),
                    },
                ),
            ]),
        },
        KernelSpec {
            name: "SP",
            description: "scalar pentadiagonal sweeps over a large grid",
            ops: scale.ops(170_000),
            access_freq: 0.76,
            pattern: Pattern::Strided {
                footprint_lines: l(49_152),
                stride_lines: 7,
            },
        },
        KernelSpec {
            name: "MG",
            description: "multigrid V-cycle over shrinking grids",
            ops: scale.ops(60_000),
            access_freq: 0.54,
            pattern: Pattern::Mix(vec![
                (
                    0.5,
                    Pattern::Stream {
                        footprint_lines: l(32_768),
                    },
                ),
                (
                    0.3,
                    Pattern::Stream {
                        footprint_lines: l(4_096),
                    },
                ),
                (
                    0.2,
                    Pattern::Stream {
                        footprint_lines: l(512),
                    },
                ),
            ]),
        },
        KernelSpec {
            name: "FT",
            description: "3-D FFT butterflies",
            ops: scale.ops(70_000),
            access_freq: 0.58,
            pattern: Pattern::Mix(vec![
                (
                    0.5,
                    Pattern::Strided {
                        footprint_lines: l(32_768),
                        stride_lines: 64,
                    },
                ),
                (
                    0.5,
                    Pattern::Stream {
                        footprint_lines: l(32_768),
                    },
                ),
            ]),
        },
    ]
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredKernel {
    /// Kernel name.
    pub name: &'static str,
    /// Operation count `w` (as specified by the kernel).
    pub ops: u64,
    /// Access frequency `f` (as specified by the kernel).
    pub access_freq: f64,
    /// Measured miss rate on the reference LLC.
    pub miss_rate_ref: f64,
    /// Power-law fit across the measured sizes (if the curve was fittable).
    pub fit: Option<PowerLawFit>,
}

/// Regenerates a Table-2 analogue: runs every kernel against a ladder of
/// LLC sizes ending at `ref_bytes`, reports the miss rate at the reference
/// size and the fitted `(m0, α)`.
pub fn measure_kernels(kernels: &[KernelSpec], ref_bytes: u64, seed: u64) -> Vec<MeasuredKernel> {
    // Geometric ladder: ref/64 … ref.
    let sizes: Vec<u64> = (0..=6).map(|k| ref_bytes >> (6 - k)).collect();
    kernels
        .iter()
        .map(|k| {
            let accesses = k.accesses();
            let warmup = accesses / 4;
            let curve = measure_miss_curve(&k.pattern, seed, &sizes, warmup, accesses);
            let miss_rate_ref = *curve.miss_rates.last().expect("non-empty ladder");
            let fit = fit_power_law(&curve, ref_bytes as f64);
            MeasuredKernel {
                name: k.name,
                ops: k.ops,
                access_freq: k.access_freq,
                miss_rate_ref,
                fit,
            }
        })
        .collect()
}

/// Reference LLC size used by the paper's instrumentation (40 MB), scaled
/// to the kernel footprints: at `Test` scale a 4 MB "40 MB-equivalent"
/// keeps runtimes tiny while preserving the footprint/cache ratio.
pub fn reference_llc_bytes(scale: KernelScale) -> u64 {
    match scale {
        KernelScale::Test => 4 << 20,
        KernelScale::Demo => 64 << 20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::LINE_SIZE;

    #[test]
    fn six_kernels_matching_npb_names() {
        let ks = npb_like_kernels(KernelScale::Test);
        let names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        assert_eq!(names, vec!["CG", "BT", "LU", "SP", "MG", "FT"]);
    }

    #[test]
    fn access_frequencies_match_table2_magnitudes() {
        // The synthetic f's are chosen near the measured Table-2 values
        // (0.5–0.85 accesses/op).
        for k in npb_like_kernels(KernelScale::Test) {
            assert!((0.5..=0.9).contains(&k.access_freq), "{}", k.name);
        }
    }

    #[test]
    fn accesses_is_ops_times_freq() {
        let k = &npb_like_kernels(KernelScale::Test)[0];
        assert_eq!(k.accesses(), (k.ops as f64 * k.access_freq).round() as u64);
    }

    #[test]
    fn demo_scale_is_larger() {
        let t = npb_like_kernels(KernelScale::Test);
        let d = npb_like_kernels(KernelScale::Demo);
        for (a, b) in t.iter().zip(&d) {
            assert!(b.ops > a.ops);
        }
    }

    #[test]
    fn measured_table_has_sane_rows() {
        let ks = npb_like_kernels(KernelScale::Test);
        let table = measure_kernels(&ks, reference_llc_bytes(KernelScale::Test), 1);
        assert_eq!(table.len(), 6);
        for row in &table {
            assert!(
                (0.0..=1.0).contains(&row.miss_rate_ref),
                "{}: {}",
                row.name,
                row.miss_rate_ref
            );
        }
        // At a 4 MB reference cache (65536 lines) the kernels must not all
        // saturate: at least four rows below 50% misses.
        let low = table.iter().filter(|r| r.miss_rate_ref < 0.5).count();
        assert!(low >= 4, "table saturated: {table:?}");
    }

    #[test]
    fn sp_misses_more_than_cg_like_the_paper() {
        // Table 2 ordering: SP's miss rate (1.51e-2) far exceeds CG's
        // (6.59e-4). Our synthetic analogues preserve the ordering.
        let ks = npb_like_kernels(KernelScale::Test);
        let table = measure_kernels(&ks, reference_llc_bytes(KernelScale::Test), 2);
        let get = |n: &str| table.iter().find(|r| r.name == n).unwrap().miss_rate_ref;
        assert!(
            get("SP") > get("CG"),
            "SP {} vs CG {}",
            get("SP"),
            get("CG")
        );
    }

    #[test]
    fn fits_exist_for_cache_sensitive_kernels() {
        let ks = npb_like_kernels(KernelScale::Test);
        let table = measure_kernels(&ks, reference_llc_bytes(KernelScale::Test), 3);
        let fitted = table.iter().filter(|r| r.fit.is_some()).count();
        assert!(
            fitted >= 3,
            "only {fitted} kernels produced a fittable curve"
        );
        for row in table.iter().filter(|r| r.fit.is_some()) {
            let fit = row.fit.unwrap();
            assert!(
                fit.alpha > 0.0,
                "{}: negative alpha {}",
                row.name,
                fit.alpha
            );
        }
    }

    #[test]
    fn footprints_exceed_test_reference_cache_for_streaming_kernels() {
        // SP's footprint (49k lines ~ 3 MB at 64 B) is chosen near the 4 MB
        // test reference so partial caching effects are visible.
        let ks = npb_like_kernels(KernelScale::Test);
        let sp = ks.iter().find(|k| k.name == "SP").unwrap();
        if let Pattern::Strided {
            footprint_lines, ..
        } = sp.pattern
        {
            assert!(footprint_lines * LINE_SIZE > reference_llc_bytes(KernelScale::Test) / 2);
        } else {
            panic!("SP should be strided");
        }
    }
}
