//! Trace-driven cache simulation substrate.
//!
//! The paper's Table 2 was produced by instrumenting NPB binaries with
//! PEBIL and measuring miss rates on a simulated 40 MB LLC. This crate
//! rebuilds that measurement pipeline from scratch so the repository is
//! self-contained:
//!
//! * [`cache`] — a set-associative cache with pluggable replacement
//!   policies ([`policy`]): LRU, FIFO, Random and Tree-PLRU;
//! * [`partition`] — way partitioning in the style of Intel Cache
//!   Allocation Technology: capacity bitmasks restrict which ways each
//!   co-scheduled application may fill, giving the exclusive-fraction
//!   semantics the paper's model assumes;
//! * [`hierarchy`] — a private-L1 + shared-LLC two-level hierarchy with a
//!   latency model matching the paper's `ls`/`ll` accounting;
//! * [`trace`] — synthetic memory-reference generators, including a
//!   Pareto reuse-distance generator whose miss-rate curve follows the
//!   power law of cache misses by construction;
//! * [`kernels`] — NPB-like application kernels (CG/BT/LU/SP/MG/FT access
//!   patterns) used to regenerate an analogue of Table 2;
//! * [`powerlaw`] — miss-curve measurement across cache sizes and
//!   least-squares fitting of the `(m0, α)` power-law parameters.
//!
//! # Quick start
//!
//! ```
//! use cachesim::cache::{CacheConfig, SetAssocCache};
//! use cachesim::policy::Policy;
//! use cachesim::trace::{Pattern, TraceGenerator};
//!
//! let mut cache = SetAssocCache::new(CacheConfig {
//!     size_bytes: 32 * 1024,
//!     line_size: 64,
//!     ways: 8,
//!     policy: Policy::Lru,
//! });
//! let mut gen = TraceGenerator::new(Pattern::stream(1 << 20), 42);
//! for _ in 0..10_000 {
//!     cache.access(gen.next_address());
//! }
//! assert!(cache.stats().accesses == 10_000);
//! ```

pub mod cache;
pub mod clos;
pub mod hierarchy;
pub mod kernels;
pub mod partition;
pub mod policy;
pub mod powerlaw;
pub mod prefetch;
pub mod stats;
pub mod trace;
pub mod writeback;

pub use cache::{AccessOutcome, CacheConfig, SetAssocCache};
pub use clos::{ClosConfig, ClosError, ClosTable};
pub use hierarchy::{Hierarchy, HierarchyConfig, LatencyModel};
pub use partition::{PartitionId, PartitionedCache, WayMask};
pub use policy::Policy;
pub use powerlaw::{measure_miss_curve, MissCurve, PowerLawFit};
pub use prefetch::{PrefetchStats, Prefetcher, PrefetchingCache};
pub use stats::AccessStats;
pub use trace::{Pattern, TraceGenerator};
pub use writeback::{Access, WritebackCache, WritebackStats};
