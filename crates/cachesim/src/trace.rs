//! Synthetic memory-reference generators.
//!
//! Patterns are deliberately simple, parametric models of the access
//! behaviours that matter for LLC studies: streaming, strided, uniform
//! random, Zipf-popular and — most importantly — a **Pareto reuse-distance
//! generator** whose miss-rate-vs-cache-size curve follows the power law of
//! cache misses *by construction* (a fully-associative LRU cache of `C`
//! lines misses exactly when the stack distance is `≥ C`, and Pareto tail
//! probabilities are `(x_m/C)^θ`). This is what lets the repository
//! regenerate power-law parameters experimentally instead of assuming
//! them.

use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};

/// Cache-line size assumed by the generators (bytes).
pub const LINE_SIZE: u64 = 64;

/// A parametric access pattern over a logical address space.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Sequential scan over `footprint_lines` lines, wrapping around.
    Stream {
        /// Footprint in cache lines.
        footprint_lines: u64,
    },
    /// Fixed-stride scan (`stride_lines` lines per step), wrapping.
    Strided {
        /// Footprint in cache lines.
        footprint_lines: u64,
        /// Stride in lines (≥ 1).
        stride_lines: u64,
    },
    /// Uniformly random line in the footprint.
    UniformRandom {
        /// Footprint in cache lines.
        footprint_lines: u64,
    },
    /// Zipf-popular lines (rank-`k` line has weight `k^-s`).
    Zipf {
        /// Footprint in cache lines (CDF is precomputed; keep ≤ ~2^20).
        footprint_lines: u64,
        /// Zipf exponent `s > 0`.
        exponent: f64,
    },
    /// Stack-distance model: each access reuses the line at Pareto-
    /// distributed stack depth (shape `theta`, scale `x_m = scale_lines`);
    /// depths beyond the current stack touch a brand-new line.
    ///
    /// The resulting miss rate on a fully-associative LRU cache of `C`
    /// lines is `≈ (scale_lines / C)^theta` — a power law with `α = theta`.
    ParetoReuse {
        /// Pareto shape `θ` (the power-law exponent `α`).
        theta: f64,
        /// Pareto scale `x_m` in lines.
        scale_lines: f64,
    },
    /// Weighted mixture of sub-patterns (weights need not be normalised).
    Mix(Vec<(f64, Pattern)>),
}

impl Pattern {
    /// Convenience constructor for a streaming pattern over a footprint
    /// given in **bytes**.
    pub fn stream(footprint_bytes: u64) -> Self {
        Self::Stream {
            footprint_lines: (footprint_bytes / LINE_SIZE).max(1),
        }
    }

    /// Convenience constructor for the Pareto reuse-distance model.
    pub fn pareto(theta: f64, scale_lines: f64) -> Self {
        Self::ParetoReuse { theta, scale_lines }
    }
}

/// Stateful generator turning a [`Pattern`] into an address stream.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    pattern: Pattern,
    rng: SmallRng,
    /// Position state for Stream/Strided.
    cursor: u64,
    /// Precomputed Zipf CDF (lazy).
    zipf_cdf: Vec<f64>,
    /// LRU stack of line ids for ParetoReuse.
    stack: Vec<u64>,
    next_line: u64,
    /// Disjoint base offsets per Mix arm so sub-patterns do not alias.
    mix_state: Vec<TraceGenerator>,
}

impl TraceGenerator {
    /// Builds a generator with its own deterministic RNG.
    pub fn new(pattern: Pattern, seed: u64) -> Self {
        let mut zipf_cdf = Vec::new();
        let mut mix_state = Vec::new();
        match &pattern {
            Pattern::Zipf {
                footprint_lines,
                exponent,
            } => {
                assert!(*footprint_lines > 0 && *footprint_lines <= 1 << 22);
                let mut acc = 0.0;
                zipf_cdf.reserve(*footprint_lines as usize);
                for k in 1..=*footprint_lines {
                    acc += (k as f64).powf(-exponent);
                    zipf_cdf.push(acc);
                }
            }
            Pattern::Mix(parts) => {
                assert!(!parts.is_empty(), "empty pattern mixture");
                for (i, (w, p)) in parts.iter().enumerate() {
                    assert!(*w > 0.0, "mixture weights must be positive");
                    mix_state.push(TraceGenerator::new(
                        p.clone(),
                        seed.wrapping_add(0x9E37_79B9).wrapping_mul(i as u64 + 1),
                    ));
                }
            }
            _ => {}
        }
        Self {
            pattern,
            rng: SmallRng::seed_from_u64(seed),
            cursor: 0,
            zipf_cdf,
            stack: Vec::new(),
            next_line: 0,
            mix_state,
        }
    }

    /// Produces the next byte address.
    pub fn next_address(&mut self) -> u64 {
        let line = self.next_line_id();
        line * LINE_SIZE
    }

    fn next_line_id(&mut self) -> u64 {
        match &self.pattern {
            Pattern::Stream { footprint_lines } => {
                let l = self.cursor % footprint_lines;
                self.cursor += 1;
                l
            }
            Pattern::Strided {
                footprint_lines,
                stride_lines,
            } => {
                let l = self.cursor % footprint_lines;
                self.cursor = self.cursor.wrapping_add(*stride_lines);
                l
            }
            Pattern::UniformRandom { footprint_lines } => {
                self.rng.random_range(0..*footprint_lines)
            }
            Pattern::Zipf { .. } => {
                let total = *self.zipf_cdf.last().expect("non-empty CDF");
                let u = self.rng.random_range(0.0..total);
                let rank = self
                    .zipf_cdf
                    .partition_point(|&c| c < u)
                    .min(self.zipf_cdf.len() - 1);
                rank as u64
            }
            Pattern::ParetoReuse { theta, scale_lines } => {
                let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                let depth = (scale_lines / u.powf(1.0 / theta)).floor() as usize;
                if depth < self.stack.len() {
                    let line = self.stack.remove(depth);
                    self.stack.insert(0, line);
                    line
                } else {
                    let line = self.next_line;
                    self.next_line += 1;
                    self.stack.insert(0, line);
                    line
                }
            }
            Pattern::Mix(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                let mut u = self.rng.random_range(0.0..total);
                let mut chosen = 0;
                for (i, (w, _)) in parts.iter().enumerate() {
                    if u < *w {
                        chosen = i;
                        break;
                    }
                    u -= *w;
                }
                // Offset each arm into a disjoint gigabyte-aligned region.
                let sub = self.mix_state[chosen].next_line_id();
                (chosen as u64) << 34 | sub
            }
        }
    }

    /// Fills `out` with the next `out.len()` addresses.
    pub fn fill(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_address();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_wraps_sequentially() {
        let mut g = TraceGenerator::new(Pattern::Stream { footprint_lines: 4 }, 0);
        let lines: Vec<u64> = (0..8).map(|_| g.next_address() / LINE_SIZE).collect();
        assert_eq!(lines, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn strided_steps_by_stride() {
        let mut g = TraceGenerator::new(
            Pattern::Strided {
                footprint_lines: 8,
                stride_lines: 3,
            },
            0,
        );
        let lines: Vec<u64> = (0..4).map(|_| g.next_address() / LINE_SIZE).collect();
        assert_eq!(lines, vec![0, 3, 6, 1]);
    }

    #[test]
    fn uniform_random_stays_in_footprint() {
        let mut g = TraceGenerator::new(
            Pattern::UniformRandom {
                footprint_lines: 100,
            },
            1,
        );
        for _ in 0..1000 {
            assert!(g.next_address() / LINE_SIZE < 100);
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut g = TraceGenerator::new(
            Pattern::Zipf {
                footprint_lines: 1000,
                exponent: 1.2,
            },
            2,
        );
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if g.next_address() / LINE_SIZE < 10 {
                head += 1;
            }
        }
        // The top-10 lines of a Zipf(1.2) over 1000 carry far more than 1%
        // of the mass (~58% analytically); accept anything above 30%.
        assert!(head as f64 / n as f64 > 0.3, "head share {head}/{n}");
    }

    #[test]
    fn pareto_reuse_revisits_recent_lines() {
        let mut g = TraceGenerator::new(Pattern::pareto(0.5, 1.0), 3);
        let mut seen = HashSet::new();
        let mut reuses = 0;
        for _ in 0..5000 {
            let l = g.next_address() / LINE_SIZE;
            if !seen.insert(l) {
                reuses += 1;
            }
        }
        assert!(reuses > 1000, "too few reuses: {reuses}");
        assert!(seen.len() > 10, "stack never grew");
    }

    #[test]
    fn pareto_stack_grows_sublinearly() {
        let mut g = TraceGenerator::new(Pattern::pareto(0.5, 1.0), 4);
        for _ in 0..20_000 {
            g.next_address();
        }
        // L ~ (1.5 N)^{2/3} ≈ 1000 for N = 2e4; allow generous slack.
        let len = g.stack.len();
        assert!(len > 200 && len < 5000, "stack length {len}");
    }

    #[test]
    fn mix_uses_disjoint_regions() {
        let mut g = TraceGenerator::new(
            Pattern::Mix(vec![
                (1.0, Pattern::Stream { footprint_lines: 4 }),
                (1.0, Pattern::UniformRandom { footprint_lines: 4 }),
            ]),
            5,
        );
        let mut regions = HashSet::new();
        for _ in 0..100 {
            regions.insert(g.next_address() >> 40);
        }
        assert_eq!(regions.len(), 2, "both arms should be exercised");
    }

    #[test]
    fn generators_are_reproducible() {
        for pattern in [
            Pattern::UniformRandom {
                footprint_lines: 64,
            },
            Pattern::pareto(0.5, 2.0),
            Pattern::Zipf {
                footprint_lines: 128,
                exponent: 1.0,
            },
        ] {
            let a: Vec<u64> = {
                let mut g = TraceGenerator::new(pattern.clone(), 9);
                (0..64).map(|_| g.next_address()).collect()
            };
            let b: Vec<u64> = {
                let mut g = TraceGenerator::new(pattern.clone(), 9);
                (0..64).map(|_| g.next_address()).collect()
            };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fill_matches_next_address() {
        let mut g1 = TraceGenerator::new(Pattern::pareto(0.6, 1.0), 11);
        let mut g2 = TraceGenerator::new(Pattern::pareto(0.6, 1.0), 11);
        let mut buf = vec![0u64; 32];
        g1.fill(&mut buf);
        for &b in &buf {
            assert_eq!(b, g2.next_address());
        }
    }

    #[test]
    #[should_panic(expected = "empty pattern mixture")]
    fn empty_mix_panics() {
        let _ = TraceGenerator::new(Pattern::Mix(vec![]), 0);
    }
}
