//! Two-level cache hierarchy: private L1 per core, shared (optionally
//! partitioned) LLC, infinite memory behind it.
//!
//! The latency accounting matches the paper's model: every data access pays
//! the LLC latency `ls`; an LLC miss additionally pays the memory latency
//! `ll`. A private L1 can optionally absorb accesses before they reach the
//! LLC (the paper's `f_i` counts accesses that reach the storage
//! hierarchy, so the default configuration disables the L1).

use crate::cache::{AccessOutcome, CacheConfig, SetAssocCache};
use crate::partition::{PartitionedCache, WayMask};
use crate::stats::AccessStats;

/// Latency parameters (same units as the scheduling model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Latency of an L1 hit.
    pub l1: f64,
    /// `ls` — latency of an LLC access.
    pub llc: f64,
    /// `ll` — additional latency of a memory access on LLC miss.
    pub memory: f64,
}

impl LatencyModel {
    /// Paper values: `ls = 0.17`, `ll = 1` (L1 free).
    pub fn paper() -> Self {
        Self {
            l1: 0.0,
            llc: 0.17,
            memory: 1.0,
        }
    }
}

/// Configuration of the hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Optional private L1 configuration (per core).
    pub l1: Option<CacheConfig>,
    /// Shared LLC configuration.
    pub llc: CacheConfig,
    /// Per-partition LLC way masks (one per co-scheduled application).
    pub masks: Vec<WayMask>,
    /// Whether the masks are enforced (partitioned) or ignored (shared).
    pub enforce: bool,
    /// Latency parameters.
    pub latency: LatencyModel,
}

/// A multi-core two-level hierarchy: `cores` private L1s in front of one
/// shared LLC.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1s: Vec<SetAssocCache>,
    llc: PartitionedCache,
    latency: LatencyModel,
    cost: f64,
    accesses: u64,
}

impl Hierarchy {
    /// Builds a hierarchy with one L1 per partition (core group).
    pub fn new(config: HierarchyConfig) -> Self {
        let n = config.masks.len();
        let l1s = match config.l1 {
            Some(c) => (0..n)
                .map(|i| SetAssocCache::with_seed(c, i as u64))
                .collect(),
            None => Vec::new(),
        };
        Self {
            l1s,
            llc: PartitionedCache::new(config.llc, config.masks, config.enforce),
            latency: config.latency,
            cost: 0.0,
            accesses: 0,
        }
    }

    /// Issues one data access on behalf of partition `id` and returns the
    /// latency it cost.
    pub fn access(&mut self, id: usize, addr: u64) -> f64 {
        self.accesses += 1;
        let mut cost = 0.0;
        if !self.l1s.is_empty() {
            cost += self.latency.l1;
            if self.l1s[id].access(addr).is_hit() {
                self.cost += cost;
                return cost;
            }
        }
        cost += self.latency.llc;
        match self.llc.access(id, addr) {
            AccessOutcome::Hit => {}
            AccessOutcome::Miss { .. } | AccessOutcome::Bypass => {
                cost += self.latency.memory;
            }
        }
        self.cost += cost;
        cost
    }

    /// Total latency accumulated so far.
    pub fn total_cost(&self) -> f64 {
        self.cost
    }

    /// Total number of accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Average latency per access (the paper's `ls + ll·m` term).
    pub fn mean_access_cost(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cost / self.accesses as f64
        }
    }

    /// LLC statistics of one partition.
    pub fn llc_partition_stats(&self, id: usize) -> &AccessStats {
        self.llc.partition_stats(id)
    }

    /// Aggregate LLC statistics.
    pub fn llc_stats(&self) -> &AccessStats {
        self.llc.stats()
    }

    /// The underlying partitioned LLC.
    pub fn llc(&self) -> &PartitionedCache {
        &self.llc
    }
}

/// Convenience: an LLC-only hierarchy with a single full-mask partition.
pub fn single_llc(llc: CacheConfig, latency: LatencyModel) -> Hierarchy {
    let ways = llc.ways;
    Hierarchy::new(HierarchyConfig {
        l1: None,
        llc,
        masks: vec![WayMask::contiguous(0, ways)],
        enforce: true,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn llc_config() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 64 * 8,
            line_size: 64,
            ways: 8,
            policy: Policy::Lru,
        }
    }

    fn l1_config() -> CacheConfig {
        CacheConfig {
            size_bytes: 4 * 64 * 2,
            line_size: 64,
            ways: 2,
            policy: Policy::Lru,
        }
    }

    #[test]
    fn llc_only_costs_match_paper_accounting() {
        let mut h = single_llc(llc_config(), LatencyModel::paper());
        // First access: ls + ll; second (hit): ls.
        assert!((h.access(0, 0x40) - 1.17).abs() < 1e-12);
        assert!((h.access(0, 0x40) - 0.17).abs() < 1e-12);
        assert!((h.total_cost() - 1.34).abs() < 1e-12);
        assert_eq!(h.accesses(), 2);
        assert!((h.mean_access_cost() - 0.67).abs() < 1e-12);
    }

    #[test]
    fn l1_absorbs_repeated_accesses() {
        let cfg = HierarchyConfig {
            l1: Some(l1_config()),
            llc: llc_config(),
            masks: vec![WayMask::contiguous(0, 8)],
            enforce: true,
            latency: LatencyModel {
                l1: 0.01,
                llc: 0.17,
                memory: 1.0,
            },
        };
        let mut h = Hierarchy::new(cfg);
        h.access(0, 0x40); // L1 miss, LLC miss
        let c = h.access(0, 0x40); // L1 hit
        assert!((c - 0.01).abs() < 1e-12);
        assert_eq!(h.llc_stats().accesses, 1, "second access never reached LLC");
    }

    #[test]
    fn per_partition_llc_isolation_under_enforcement() {
        let cfg = HierarchyConfig {
            l1: None,
            llc: llc_config(),
            masks: vec![WayMask::contiguous(0, 4), WayMask::contiguous(4, 4)],
            enforce: true,
            latency: LatencyModel::paper(),
        };
        let mut h = Hierarchy::new(cfg);
        // Partition 0 warms a small working set.
        let ws: Vec<u64> = (0..32).map(|i| i * 64).collect();
        for &a in &ws {
            h.access(0, a);
        }
        // Partition 1 streams garbage.
        for i in 1000..3000u64 {
            h.access(1, i * 64);
        }
        // Partition 0 re-touches its set: hits survive thanks to masks.
        let before = h.llc_partition_stats(0).misses;
        for &a in &ws {
            h.access(0, a);
        }
        let new_misses = h.llc_partition_stats(0).misses - before;
        assert_eq!(new_misses, 0, "partitioning failed to isolate");
    }

    #[test]
    fn shared_mode_degrades_victim_partition() {
        let mk = |enforce: bool| {
            let cfg = HierarchyConfig {
                l1: None,
                llc: llc_config(),
                masks: vec![WayMask::contiguous(0, 4), WayMask::contiguous(4, 4)],
                enforce,
                latency: LatencyModel::paper(),
            };
            let mut h = Hierarchy::new(cfg);
            let ws: Vec<u64> = (0..32).map(|i| i * 64).collect();
            for _ in 0..4 {
                for &a in &ws {
                    h.access(0, a);
                }
                for i in 0..512u64 {
                    h.access(1, (10_000 + i) * 64);
                }
            }
            h.llc_partition_stats(0).miss_rate()
        };
        let partitioned = mk(true);
        let shared = mk(false);
        assert!(
            shared > partitioned,
            "shared {shared} should miss more than partitioned {partitioned}"
        );
    }

    #[test]
    fn mean_cost_interpolates_between_hit_and_miss() {
        let mut h = single_llc(llc_config(), LatencyModel::paper());
        for i in 0..1000u64 {
            h.access(0, (i % 8) * 64); // small hot set: mostly hits
        }
        let mean = h.mean_access_cost();
        assert!(mean > 0.17 - 1e-12 && mean < 1.17 + 1e-12);
        assert!(mean < 0.2, "hot set should be close to pure ls");
    }

    #[test]
    fn empty_hierarchy_reports_zero() {
        let h = single_llc(llc_config(), LatencyModel::paper());
        assert_eq!(h.total_cost(), 0.0);
        assert_eq!(h.mean_access_cost(), 0.0);
    }
}
