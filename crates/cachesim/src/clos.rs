//! Class-of-service (CLOS) management, modelled on Intel Cache Allocation
//! Technology's programming rules.
//!
//! Real CAT hardware constrains capacity bitmasks: each CLOS mask must be
//! **contiguous**, **non-empty**, and there is a bounded number of CLOS
//! ids. Converting the scheduler's rational fractions `x_i` into masks is
//! therefore a rounding problem; this module implements it with a
//! largest-remainder apportionment so the way counts sum to at most the
//! associativity while staying as close as possible to the requested
//! fractions.

use crate::partition::WayMask;

/// Errors raised by the CLOS manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosError {
    /// More classes requested than the hardware exposes.
    TooManyClasses {
        /// Requested class count.
        requested: usize,
        /// Hardware maximum.
        max: usize,
    },
    /// A mask violates CAT's contiguity rule.
    NonContiguous(u64),
    /// A mask is empty but the configuration requires every class to own
    /// at least `min_ways` ways.
    TooFewWays {
        /// Offending class.
        clos: usize,
        /// Configured minimum.
        min_ways: u32,
    },
    /// Masks overlap but exclusive mode was requested.
    Overlap {
        /// First class of the offending pair.
        a: usize,
        /// Second class of the offending pair.
        b: usize,
    },
}

impl std::fmt::Display for ClosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooManyClasses { requested, max } => {
                write!(f, "{requested} classes requested, hardware supports {max}")
            }
            Self::NonContiguous(mask) => write!(f, "mask {mask:#b} is not contiguous"),
            Self::TooFewWays { clos, min_ways } => {
                write!(f, "class {clos} owns fewer than {min_ways} way(s)")
            }
            Self::Overlap { a, b } => write!(f, "classes {a} and {b} overlap"),
        }
    }
}

impl std::error::Error for ClosError {}

/// Hardware-style constraints of the CLOS table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosConfig {
    /// Cache associativity (mask width).
    pub ways: usize,
    /// Maximum number of classes (Intel parts expose 4–16).
    pub max_clos: usize,
    /// Minimum ways per non-empty class (CAT requires ≥ 1; some parts 2).
    pub min_ways: u32,
}

impl ClosConfig {
    /// A 16-CLOS, 1-way-minimum configuration for the given associativity
    /// (typical of Xeon server parts).
    pub fn xeon(ways: usize) -> Self {
        Self {
            ways,
            max_clos: 16,
            min_ways: 1,
        }
    }
}

/// A validated CLOS table: one contiguous, pairwise-disjoint mask per
/// class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosTable {
    config: ClosConfig,
    masks: Vec<WayMask>,
}

impl ClosTable {
    /// Validates and stores explicit masks. Zero masks are allowed only
    /// when the requested fraction was zero (the scheduler's `x_i = 0`).
    pub fn new(config: ClosConfig, masks: Vec<WayMask>) -> Result<Self, ClosError> {
        if masks.len() > config.max_clos {
            return Err(ClosError::TooManyClasses {
                requested: masks.len(),
                max: config.max_clos,
            });
        }
        for (i, m) in masks.iter().enumerate() {
            if m.0 != 0 && !is_contiguous(m.0) {
                return Err(ClosError::NonContiguous(m.0));
            }
            if m.0 != 0 && m.ways() < config.min_ways {
                return Err(ClosError::TooFewWays {
                    clos: i,
                    min_ways: config.min_ways,
                });
            }
        }
        for a in 0..masks.len() {
            for b in a + 1..masks.len() {
                if masks[a].overlaps(masks[b]) {
                    return Err(ClosError::Overlap { a, b });
                }
            }
        }
        Ok(Self { config, masks })
    }

    /// Apportions the associativity to `fractions` by largest remainder
    /// (Hamilton's method): way counts are `floor(x_i · W)` plus one extra
    /// way for the largest fractional remainders until `Σ ways_i =
    /// min(round(Σx_i·W), W)`. Zero fractions get empty masks (the
    /// scheduler's "no cache" assignment bypasses the LLC).
    pub fn from_fractions(config: ClosConfig, fractions: &[f64]) -> Result<Self, ClosError> {
        if fractions.len() > config.max_clos {
            return Err(ClosError::TooManyClasses {
                requested: fractions.len(),
                max: config.max_clos,
            });
        }
        let w = config.ways as f64;
        let exact: Vec<f64> = fractions.iter().map(|&x| (x.max(0.0)) * w).collect();
        let mut counts: Vec<u32> = exact.iter().map(|&e| e.floor() as u32).collect();
        let target: u32 = (exact.iter().sum::<f64>().round() as u32).min(config.ways as u32);
        // Distribute leftovers by largest remainder.
        let mut order: Vec<usize> = (0..fractions.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = exact[a] - exact[a].floor();
            let rb = exact[b] - exact[b].floor();
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        });
        let assigned: u32 = counts.iter().sum();
        let leftovers = target.saturating_sub(assigned) as usize;
        for &i in order.iter().take(leftovers) {
            counts[i] += 1;
        }
        // Enforce min_ways for non-zero requests.
        for (i, &f) in fractions.iter().enumerate() {
            if f > 0.0 && counts[i] > 0 && counts[i] < config.min_ways {
                counts[i] = config.min_ways;
            }
        }
        // Lay the classes out contiguously.
        let mut masks = Vec::with_capacity(fractions.len());
        let mut next = 0usize;
        for &c in &counts {
            let c = (c as usize).min(config.ways.saturating_sub(next));
            masks.push(WayMask::contiguous(next, c));
            next += c;
        }
        Self::new(config, masks)
    }

    /// The per-class masks.
    pub fn masks(&self) -> &[WayMask] {
        &self.masks
    }

    /// The effective fraction class `i` received (`ways_i / W`).
    pub fn effective_fraction(&self, i: usize) -> f64 {
        f64::from(self.masks[i].ways()) / self.config.ways as f64
    }

    /// Total ways allocated across classes.
    pub fn allocated_ways(&self) -> u32 {
        self.masks.iter().map(|m| m.ways()).sum()
    }

    /// Renders the table as `pqos`-style allocation commands
    /// (`llc:<clos>=<hex mask>`), the format Intel's CAT userspace tool
    /// consumes — i.e. what deploying a computed schedule on real hardware
    /// would look like. Classes with empty masks are omitted (no
    /// allocation; their partition bypasses the LLC in our model).
    pub fn to_pqos_commands(&self) -> Vec<String> {
        self.masks
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(i, m)| format!("llc:{i}=0x{:x}", m.0))
            .collect()
    }
}

fn is_contiguous(mask: u64) -> bool {
    let shifted = mask >> mask.trailing_zeros();
    (shifted & shifted.wrapping_add(1)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> ClosConfig {
        ClosConfig::xeon(16)
    }

    #[test]
    fn contiguity_detection() {
        assert!(is_contiguous(0b0011_1000));
        assert!(is_contiguous(0b1));
        assert!(is_contiguous(u64::MAX));
        assert!(!is_contiguous(0b0101));
        assert!(!is_contiguous(0b1001_1000));
    }

    #[test]
    fn explicit_masks_are_validated() {
        let ok = ClosTable::new(
            cfg(),
            vec![WayMask::contiguous(0, 8), WayMask::contiguous(8, 8)],
        );
        assert!(ok.is_ok());
        let bad = ClosTable::new(cfg(), vec![WayMask(0b0101)]);
        assert_eq!(bad.unwrap_err(), ClosError::NonContiguous(0b0101));
        let overlap = ClosTable::new(
            cfg(),
            vec![WayMask::contiguous(0, 9), WayMask::contiguous(8, 8)],
        );
        assert!(matches!(overlap.unwrap_err(), ClosError::Overlap { .. }));
    }

    #[test]
    fn too_many_classes_rejected() {
        let masks = vec![WayMask::contiguous(0, 1); 17];
        assert!(matches!(
            ClosTable::new(cfg(), masks).unwrap_err(),
            ClosError::TooManyClasses { .. }
        ));
    }

    #[test]
    fn apportionment_matches_exact_fractions() {
        let t = ClosTable::from_fractions(cfg(), &[0.5, 0.25, 0.25]).unwrap();
        assert_eq!(t.masks()[0].ways(), 8);
        assert_eq!(t.masks()[1].ways(), 4);
        assert_eq!(t.masks()[2].ways(), 4);
        assert_eq!(t.allocated_ways(), 16);
    }

    #[test]
    fn largest_remainder_beats_naive_rounding() {
        // Naive round() of [0.09; 6] gives 6×1 = 6 ways from 0.54·16 ≈ 8.6;
        // largest remainder hits the target count.
        let fr = vec![0.09; 6];
        let t = ClosTable::from_fractions(cfg(), &fr).unwrap();
        let total = t.allocated_ways();
        let target = (0.54f64 * 16.0).round() as u32;
        assert_eq!(total, target, "{t:?}");
    }

    #[test]
    fn zero_fraction_gets_empty_mask() {
        let t = ClosTable::from_fractions(cfg(), &[1.0, 0.0]).unwrap();
        assert!(t.masks()[1].is_empty());
        assert_eq!(t.effective_fraction(1), 0.0);
        assert_eq!(t.effective_fraction(0), 1.0);
    }

    #[test]
    fn effective_fractions_close_to_requested() {
        let fr = [0.4, 0.35, 0.25];
        let t = ClosTable::from_fractions(cfg(), &fr).unwrap();
        for (i, &f) in fr.iter().enumerate() {
            assert!(
                (t.effective_fraction(i) - f).abs() <= 1.0 / 16.0 + 1e-12,
                "class {i}: {} vs {f}",
                t.effective_fraction(i)
            );
        }
    }

    #[test]
    fn pqos_commands_match_masks() {
        let t = ClosTable::from_fractions(cfg(), &[0.5, 0.0, 0.25]).unwrap();
        let cmds = t.to_pqos_commands();
        assert_eq!(
            cmds,
            vec!["llc:0=0xff".to_string(), "llc:2=0xf00".to_string()]
        );
    }

    /// Scales raw draws so they sum to at most 1 (valid scheduler output).
    fn normalized(raw: &[f64], budget: f64) -> Vec<f64> {
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            return vec![0.0; raw.len()];
        }
        raw.iter().map(|v| v / total * budget).collect()
    }

    proptest! {
        #[test]
        fn apportionment_never_overallocates(
            raw in prop::collection::vec(0.0f64..1.0, 1..12),
            budget in 0.1f64..1.0,
        ) {
            let fractions = normalized(&raw, budget);
            let t = ClosTable::from_fractions(cfg(), &fractions).unwrap();
            prop_assert!(t.allocated_ways() <= 16);
        }

        #[test]
        fn masks_are_always_valid_cat_masks(
            raw in prop::collection::vec(0.0f64..1.0, 1..8),
            budget in 0.1f64..1.0,
        ) {
            let fractions = normalized(&raw, budget);
            let t = ClosTable::from_fractions(cfg(), &fractions).unwrap();
            for m in t.masks() {
                prop_assert!(m.0 == 0 || is_contiguous(m.0));
            }
            // Pairwise disjoint.
            for a in 0..t.masks().len() {
                for b in a + 1..t.masks().len() {
                    prop_assert!(!t.masks()[a].overlaps(t.masks()[b]));
                }
            }
        }
    }
}
