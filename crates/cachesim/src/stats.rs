//! Access statistics shared by all cache levels.

/// Hit/miss counters for one cache (or one partition of a cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses served by this cache.
    pub hits: u64,
    /// Accesses that had to go down the hierarchy.
    pub misses: u64,
}

impl AccessStats {
    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.accesses += 1;
        self.hits += 1;
    }

    /// Records a miss.
    pub fn record_miss(&mut self) {
        self.accesses += 1;
        self.misses += 1;
    }

    /// Miss rate in `[0, 1]`; zero accesses count as rate 0.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = AccessStats::default();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.miss_rate() - 1.0 / 3.0).abs() < 1e-15);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = AccessStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = AccessStats::default();
        a.record_hit();
        let mut b = AccessStats::default();
        b.record_miss();
        b.record_miss();
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.misses, 2);
        a.reset();
        assert_eq!(a, AccessStats::default());
    }

    #[test]
    fn rates_sum_to_one_when_nonempty() {
        let mut s = AccessStats::default();
        for i in 0..100 {
            if i % 3 == 0 {
                s.record_miss();
            } else {
                s.record_hit();
            }
        }
        assert!((s.miss_rate() + s.hit_rate() - 1.0).abs() < 1e-15);
    }
}
