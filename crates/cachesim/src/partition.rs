//! Way partitioning in the style of Intel Cache Allocation Technology.
//!
//! Each co-scheduled application is registered as a *partition* owning a
//! contiguous group of ways (a capacity bitmask). Fills are restricted to
//! the owned ways, so applications cannot evict each other's lines — the
//! isolation property the paper's model assumes. A special *shared* mode
//! gives every partition the full mask, modelling a conventional
//! unpartitioned LLC where co-runners interfere.

use crate::cache::{AccessOutcome, CacheConfig, SetAssocCache};
use crate::stats::AccessStats;

/// Identifier of a partition (dense, starting at 0).
pub type PartitionId = usize;

/// A capacity bitmask over cache ways (bit `w` set ⇒ way `w` usable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayMask(pub u64);

impl WayMask {
    /// Mask covering ways `[start, start + count)`.
    pub fn contiguous(start: usize, count: usize) -> Self {
        assert!(start + count <= 64, "mask beyond 64 ways");
        if count == 0 {
            return Self(0);
        }
        let ones = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        Self(ones << start)
    }

    /// Number of ways in the mask.
    pub fn ways(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` iff no way is usable.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` iff the two masks share a way.
    pub fn overlaps(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }
}

/// A shared LLC accessed by multiple partitions.
#[derive(Debug, Clone)]
pub struct PartitionedCache {
    cache: SetAssocCache,
    masks: Vec<WayMask>,
    per_partition: Vec<AccessStats>,
    enforce: bool,
}

impl PartitionedCache {
    /// Builds a partitioned cache. `masks[i]` is partition `i`'s capacity
    /// bitmask. When `enforce` is `false` the masks are ignored and every
    /// partition fills anywhere (shared/contended mode).
    pub fn new(config: CacheConfig, masks: Vec<WayMask>, enforce: bool) -> Self {
        let cache = SetAssocCache::new(config);
        for (i, m) in masks.iter().enumerate() {
            assert!(
                m.0 & !cache.full_mask() == 0,
                "partition {i} mask uses ways beyond associativity"
            );
        }
        let n = masks.len();
        Self {
            cache,
            masks,
            per_partition: vec![AccessStats::default(); n],
            enforce,
        }
    }

    /// Splits the cache's ways proportionally to `fractions` (which should
    /// sum to ≤ 1) and builds an **enforced** partitioned cache. Each
    /// partition receives `round(fraction · ways)` contiguous ways, with
    /// leftovers unassigned (as CAT leaves unallocated ways to the OS).
    ///
    /// A fraction that rounds to zero ways yields an empty mask — that
    /// partition bypasses the cache entirely, matching the paper's
    /// `x_i = 0` semantics.
    pub fn from_fractions(config: CacheConfig, fractions: &[f64]) -> Self {
        let total_ways = config.ways;
        let mut masks = Vec::with_capacity(fractions.len());
        let mut next = 0usize;
        for &f in fractions {
            let count =
                ((f * total_ways as f64).round() as usize).min(total_ways - next.min(total_ways));
            let count = count.min(total_ways - next);
            masks.push(WayMask::contiguous(next, count));
            next += count;
        }
        Self::new(config, masks, true)
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.masks.len()
    }

    /// The mask of a partition.
    pub fn mask(&self, id: PartitionId) -> WayMask {
        self.masks[id]
    }

    /// Whether masks are enforced (partitioned) or ignored (shared).
    pub fn is_enforced(&self) -> bool {
        self.enforce
    }

    /// Accesses `addr` on behalf of partition `id`.
    pub fn access(&mut self, id: PartitionId, addr: u64) -> AccessOutcome {
        let mask = if self.enforce {
            self.masks[id].0
        } else {
            self.cache.full_mask()
        };
        let out = self.cache.access_masked(addr, mask);
        if out.is_hit() {
            self.per_partition[id].record_hit();
        } else {
            self.per_partition[id].record_miss();
        }
        out
    }

    /// Statistics for one partition.
    pub fn partition_stats(&self, id: PartitionId) -> &AccessStats {
        &self.per_partition[id]
    }

    /// Aggregate statistics of the underlying cache.
    pub fn stats(&self) -> &AccessStats {
        self.cache.stats()
    }

    /// Clears per-partition and aggregate statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
        for s in &mut self.per_partition {
            s.reset();
        }
    }

    /// Read-only access to the underlying cache (for inspection in tests).
    pub fn inner(&self) -> &SetAssocCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn config() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 64 * 16, // 8 sets, 16 ways
            line_size: 64,
            ways: 16,
            policy: Policy::Lru,
        }
    }

    #[test]
    fn way_mask_construction() {
        assert_eq!(WayMask::contiguous(0, 4).0, 0b1111);
        assert_eq!(WayMask::contiguous(4, 2).0, 0b11_0000);
        assert_eq!(WayMask::contiguous(0, 0).0, 0);
        assert_eq!(WayMask::contiguous(0, 64).0, u64::MAX);
        assert_eq!(WayMask::contiguous(2, 3).ways(), 3);
        assert!(WayMask::contiguous(0, 0).is_empty());
        assert!(WayMask::contiguous(0, 4).overlaps(WayMask::contiguous(3, 2)));
        assert!(!WayMask::contiguous(0, 4).overlaps(WayMask::contiguous(4, 2)));
    }

    #[test]
    #[should_panic(expected = "beyond 64 ways")]
    fn oversized_mask_panics() {
        let _ = WayMask::contiguous(60, 8);
    }

    #[test]
    fn from_fractions_splits_ways() {
        let pc = PartitionedCache::from_fractions(config(), &[0.5, 0.25, 0.25]);
        assert_eq!(pc.mask(0).ways(), 8);
        assert_eq!(pc.mask(1).ways(), 4);
        assert_eq!(pc.mask(2).ways(), 4);
        assert!(!pc.mask(0).overlaps(pc.mask(1)));
        assert!(!pc.mask(1).overlaps(pc.mask(2)));
        assert!(pc.is_enforced());
    }

    #[test]
    fn zero_fraction_gets_empty_mask_and_bypasses() {
        let mut pc = PartitionedCache::from_fractions(config(), &[1.0, 0.0]);
        assert!(pc.mask(1).is_empty());
        assert_eq!(pc.access(1, 0x40), AccessOutcome::Bypass);
        assert_eq!(pc.partition_stats(1).misses, 1);
    }

    #[test]
    fn partitions_cannot_evict_each_other() {
        // Partition 0 owns ways 0..8, partition 1 owns ways 8..16.
        let mut pc = PartitionedCache::from_fractions(config(), &[0.5, 0.5]);
        // Partition 0 fills 8 lines of set 0 (its full capacity there).
        let set0 = |i: u64| i * 8 * 64;
        for i in 0..8 {
            pc.access(0, set0(i));
        }
        // Partition 1 now streams 100 distinct lines through set 0.
        for i in 100..200 {
            pc.access(1, set0(i));
        }
        // Partition 0's lines survived.
        for i in 0..8 {
            assert!(pc.inner().contains(set0(i)), "line {i} was evicted");
        }
    }

    #[test]
    fn shared_mode_allows_interference() {
        let mut pc = PartitionedCache::new(
            config(),
            vec![WayMask::contiguous(0, 8), WayMask::contiguous(8, 8)],
            false, // not enforced
        );
        let set0 = |i: u64| i * 8 * 64;
        for i in 0..8 {
            pc.access(0, set0(i));
        }
        for i in 100..200 {
            pc.access(1, set0(i));
        }
        // Partition 0 lost (at least some of) its lines.
        let survivors = (0..8).filter(|&i| pc.inner().contains(set0(i))).count();
        assert!(survivors < 8, "sharing should have caused interference");
    }

    #[test]
    fn per_partition_stats_are_separate() {
        let mut pc = PartitionedCache::from_fractions(config(), &[0.5, 0.5]);
        pc.access(0, 0x40);
        pc.access(0, 0x40);
        pc.access(1, 0x80);
        assert_eq!(pc.partition_stats(0).accesses, 2);
        assert_eq!(pc.partition_stats(0).hits, 1);
        assert_eq!(pc.partition_stats(1).accesses, 1);
        let mut total = AccessStats::default();
        total.merge(pc.partition_stats(0));
        total.merge(pc.partition_stats(1));
        assert_eq!(total.accesses, pc.stats().accesses);
    }

    #[test]
    fn partition_hits_on_foreign_way_still_count() {
        // CAT semantics: lookups search all ways, so a partition can hit on
        // a line another partition cached.
        let mut pc = PartitionedCache::from_fractions(config(), &[0.5, 0.5]);
        pc.access(0, 0x40);
        assert!(pc.access(1, 0x40).is_hit());
    }

    #[test]
    fn fractions_never_overallocate() {
        let pc = PartitionedCache::from_fractions(config(), &[0.7, 0.7]);
        let total: u32 = (0..2).map(|i| pc.mask(i).ways()).sum();
        assert!(total <= 16);
    }

    #[test]
    fn reset_stats_clears_everything() {
        let mut pc = PartitionedCache::from_fractions(config(), &[1.0]);
        pc.access(0, 0x40);
        pc.reset_stats();
        assert_eq!(pc.stats().accesses, 0);
        assert_eq!(pc.partition_stats(0).accesses, 0);
    }
}
