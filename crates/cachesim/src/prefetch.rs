//! Hardware-prefetcher models in front of a cache.
//!
//! The paper's cost model treats every LLC miss identically; real LLCs
//! hide part of the streaming misses behind next-line and stride
//! prefetchers. These wrappers let the substrate quantify how much of the
//! miss rate measured by [`crate::powerlaw`] is prefetchable — useful when
//! interpreting the absolute miss rates of the regenerated Table 2.

use crate::cache::{AccessOutcome, CacheConfig, SetAssocCache};

/// Prefetcher statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetches issued.
    pub issued: u64,
    /// Demand accesses that hit a prefetched line before eviction
    /// (approximated as: demand hits on lines brought in by a prefetch).
    pub useful: u64,
    /// Demand misses despite prefetching.
    pub demand_misses: u64,
    /// Demand accesses observed.
    pub demand_accesses: u64,
}

impl PrefetchStats {
    /// Fraction of demand accesses that missed.
    pub fn demand_miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Fraction of issued prefetches that were useful.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

/// The prefetching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefetcher {
    /// No prefetching (baseline).
    None,
    /// On every demand miss, also fetch the next `degree` lines.
    NextLine {
        /// Number of sequential lines fetched ahead.
        degree: u32,
    },
    /// Detect a constant stride from the last two demand addresses and
    /// fetch `degree` lines ahead along it.
    Stride {
        /// Number of strided lines fetched ahead.
        degree: u32,
    },
}

/// A cache fronted by a prefetcher.
#[derive(Debug, Clone)]
pub struct PrefetchingCache {
    cache: SetAssocCache,
    prefetcher: Prefetcher,
    stats: PrefetchStats,
    last_addr: Option<u64>,
    last_stride: Option<i64>,
    /// Lines currently resident because of a prefetch (cleared on demand
    /// hit so usefulness is counted once).
    prefetched: std::collections::HashSet<u64>,
}

impl PrefetchingCache {
    /// Builds the wrapper.
    pub fn new(config: CacheConfig, prefetcher: Prefetcher) -> Self {
        Self {
            cache: SetAssocCache::new(config),
            prefetcher,
            stats: PrefetchStats::default(),
            last_addr: None,
            last_stride: None,
            prefetched: std::collections::HashSet::new(),
        }
    }

    /// Issues a demand access (prefetches fire behind it as configured).
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let line_size = self.cache.config().line_size;
        let line = addr & !(line_size - 1);
        self.stats.demand_accesses += 1;
        let outcome = self.cache.access(addr);
        match outcome {
            AccessOutcome::Hit => {
                if self.prefetched.remove(&line) {
                    self.stats.useful += 1;
                }
            }
            _ => {
                self.stats.demand_misses += 1;
                self.issue_prefetches(addr, line_size);
            }
        }
        // Track stride between consecutive demand addresses.
        if let Some(prev) = self.last_addr {
            self.last_stride = Some(addr as i64 - prev as i64);
        }
        self.last_addr = Some(addr);
        outcome
    }

    fn issue_prefetches(&mut self, addr: u64, line_size: u64) {
        let (degree, stride) = match self.prefetcher {
            Prefetcher::None => return,
            Prefetcher::NextLine { degree } => (degree, line_size as i64),
            Prefetcher::Stride { degree } => {
                let Some(s) = self.last_stride.filter(|&s| s != 0) else {
                    return;
                };
                (degree, s)
            }
        };
        for k in 1..=i64::from(degree) {
            let target = addr as i64 + stride * k;
            if target < 0 {
                continue;
            }
            let target = target as u64;
            let line = target & !(line_size - 1);
            if !self.cache.contains(line) {
                self.cache.access(line);
                self.prefetched.insert(line);
                self.stats.issued += 1;
            }
        }
    }

    /// Prefetcher statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::trace::{Pattern, TraceGenerator};

    fn config() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 64 * 8, // 64 sets, 8 ways
            line_size: 64,
            ways: 8,
            policy: Policy::Lru,
        }
    }

    fn run(prefetcher: Prefetcher, pattern: Pattern, n: u64) -> PrefetchStats {
        let mut cache = PrefetchingCache::new(config(), prefetcher);
        let mut generator = TraceGenerator::new(pattern, 5);
        for _ in 0..n {
            cache.access(generator.next_address());
        }
        *cache.stats()
    }

    #[test]
    fn next_line_eliminates_most_streaming_misses() {
        let stream = Pattern::Stream {
            footprint_lines: 1 << 14,
        };
        let base = run(Prefetcher::None, stream.clone(), 20_000);
        let pf = run(Prefetcher::NextLine { degree: 4 }, stream, 20_000);
        assert!(base.demand_miss_rate() > 0.99, "stream should thrash");
        assert!(
            pf.demand_miss_rate() < 0.35,
            "next-line should hide streaming misses: {}",
            pf.demand_miss_rate()
        );
        assert!(pf.accuracy() > 0.9, "accuracy {}", pf.accuracy());
    }

    #[test]
    fn stride_prefetcher_catches_strided_scans() {
        let strided = Pattern::Strided {
            footprint_lines: 1 << 14,
            stride_lines: 7,
        };
        let base = run(Prefetcher::None, strided.clone(), 20_000);
        let pf = run(Prefetcher::Stride { degree: 4 }, strided, 20_000);
        assert!(base.demand_miss_rate() > 0.99);
        assert!(
            pf.demand_miss_rate() < 0.4,
            "stride prefetcher miss rate {}",
            pf.demand_miss_rate()
        );
    }

    #[test]
    fn next_line_is_useless_on_large_stride() {
        let strided = Pattern::Strided {
            footprint_lines: 1 << 14,
            stride_lines: 63, // next-line fetches are never touched
        };
        let pf = run(Prefetcher::NextLine { degree: 1 }, strided, 10_000);
        assert!(pf.demand_miss_rate() > 0.9);
        assert!(pf.accuracy() < 0.1, "accuracy {}", pf.accuracy());
    }

    #[test]
    fn none_prefetcher_issues_nothing() {
        let s = run(
            Prefetcher::None,
            Pattern::Stream {
                footprint_lines: 1024,
            },
            5_000,
        );
        assert_eq!(s.issued, 0);
        assert_eq!(s.useful, 0);
    }

    #[test]
    fn stats_rates_are_consistent() {
        let s = run(
            Prefetcher::NextLine { degree: 2 },
            Pattern::UniformRandom {
                footprint_lines: 1 << 12,
            },
            5_000,
        );
        assert_eq!(s.demand_accesses, 5_000);
        assert!(s.demand_miss_rate() <= 1.0);
        assert!(s.accuracy() <= 1.0);
        assert!(s.useful <= s.issued);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PrefetchStats::default();
        assert_eq!(s.demand_miss_rate(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
    }
}
