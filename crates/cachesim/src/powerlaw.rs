//! Miss-curve measurement and power-law fitting (paper Eq. 1, measured
//! rather than assumed).

use crate::cache::{CacheConfig, SetAssocCache};
use crate::policy::Policy;
use crate::trace::{Pattern, TraceGenerator, LINE_SIZE};

/// A measured miss-rate curve: `miss_rates[i]` is the steady-state miss
/// rate on a (fully-associative, LRU) cache of `sizes_bytes[i]` bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct MissCurve {
    /// Cache sizes in bytes, ascending.
    pub sizes_bytes: Vec<u64>,
    /// Measured miss rate for each size.
    pub miss_rates: Vec<f64>,
}

impl MissCurve {
    /// Miss rate at the size closest to `bytes` (panics on empty curve).
    pub fn nearest(&self, bytes: u64) -> f64 {
        let i = self
            .sizes_bytes
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s.abs_diff(bytes))
            .map(|(i, _)| i)
            .expect("empty curve");
        self.miss_rates[i]
    }
}

/// A power-law fit `m(C) = m0 (C0/C)^α` with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Reference cache size `C0` (bytes).
    pub c0_bytes: f64,
    /// Fitted miss rate at `C0`.
    pub m0: f64,
    /// Fitted sensitivity exponent `α`.
    pub alpha: f64,
    /// Coefficient of determination of the log-log regression.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted miss rate at cache size `bytes` (clamped to `[0, 1]`).
    pub fn predict(&self, bytes: f64) -> f64 {
        (self.m0 * (self.c0_bytes / bytes).powf(self.alpha)).min(1.0)
    }
}

/// Runs `pattern` against fully-associative LRU caches of each size in
/// `sizes_bytes` and returns the measured curve. Each run replays the same
/// seed, issues `warmup` unmeasured accesses and then `measured` measured
/// ones.
pub fn measure_miss_curve(
    pattern: &Pattern,
    seed: u64,
    sizes_bytes: &[u64],
    warmup: u64,
    measured: u64,
) -> MissCurve {
    let mut sizes: Vec<u64> = sizes_bytes.to_vec();
    sizes.sort_unstable();
    let miss_rates = sizes
        .iter()
        .map(|&size| {
            let mut cache =
                SetAssocCache::new(CacheConfig::fully_associative(size, LINE_SIZE, Policy::Lru));
            let mut generator = TraceGenerator::new(pattern.clone(), seed);
            for _ in 0..warmup {
                cache.access(generator.next_address());
            }
            cache.reset_stats();
            for _ in 0..measured {
                cache.access(generator.next_address());
            }
            cache.stats().miss_rate()
        })
        .collect();
    MissCurve {
        sizes_bytes: sizes,
        miss_rates,
    }
}

/// Fits Eq. 1 to a measured curve by least squares in log-log space,
/// anchored at reference size `c0_bytes`.
///
/// Saturated points (`m ≥ 1` or `m ≤ 0`) are excluded — exactly the `min`
/// clamp of Eq. 1. Returns `None` if fewer than two usable points remain.
pub fn fit_power_law(curve: &MissCurve, c0_bytes: f64) -> Option<PowerLawFit> {
    let points: Vec<(f64, f64)> = curve
        .sizes_bytes
        .iter()
        .zip(&curve.miss_rates)
        .filter(|&(_, &m)| m > 0.0 && m < 1.0)
        .map(|(&c, &m)| ((c as f64 / c0_bytes).ln(), m.ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    // ln m = intercept + slope * ln(C/C0); slope = -alpha.
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    // R^2.
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(PowerLawFit {
        c0_bytes,
        m0: intercept.exp(),
        alpha: -slope,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pareto_curve(theta: f64) -> MissCurve {
        let sizes: Vec<u64> = (4..=10).map(|k| (1u64 << k) * LINE_SIZE).collect();
        measure_miss_curve(&Pattern::pareto(theta, 1.0), 42, &sizes, 20_000, 40_000)
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let c = pareto_curve(0.5);
        for w in c.miss_rates.windows(2) {
            assert!(
                w[1] <= w[0] + 0.02,
                "curve not (approximately) monotone: {c:?}"
            );
        }
    }

    #[test]
    fn pareto_trace_recovers_its_exponent() {
        for theta in [0.4, 0.5, 0.7] {
            let curve = pareto_curve(theta);
            let fit = fit_power_law(&curve, (1u64 << 7) as f64 * LINE_SIZE as f64)
                .expect("fit should succeed");
            assert!(
                (fit.alpha - theta).abs() < 0.15,
                "theta {theta}: fitted alpha {}",
                fit.alpha
            );
            assert!(fit.r_squared > 0.95, "poor fit: r2 = {}", fit.r_squared);
        }
    }

    #[test]
    fn fitted_alpha_in_paper_range_for_typical_workload() {
        // The paper quotes alpha in [0.3, 0.7]; the theta = 0.5 generator
        // should land inside.
        let curve = pareto_curve(0.5);
        let fit = fit_power_law(&curve, 64.0 * 128.0).unwrap();
        assert!((0.3..=0.7).contains(&fit.alpha), "alpha = {}", fit.alpha);
    }

    #[test]
    fn predict_matches_anchor() {
        let fit = PowerLawFit {
            c0_bytes: 1000.0,
            m0: 0.01,
            alpha: 0.5,
            r_squared: 1.0,
        };
        assert!((fit.predict(1000.0) - 0.01).abs() < 1e-15);
        // Quadrupling cache halves the rate at alpha = 1/2.
        assert!((fit.predict(4000.0) - 0.005).abs() < 1e-12);
        // Tiny caches clamp at 1.
        assert_eq!(fit.predict(1e-9), 1.0);
    }

    #[test]
    fn fit_ignores_saturated_points() {
        let curve = MissCurve {
            sizes_bytes: vec![64, 128, 256, 512, 1024],
            miss_rates: vec![1.0, 0.5, 0.25, 0.125, 0.0625],
        };
        // Exact power law with alpha = 1 on the unsaturated part.
        let fit = fit_power_law(&curve, 128.0).unwrap();
        assert!((fit.alpha - 1.0).abs() < 1e-9);
        assert!((fit.m0 - 0.5).abs() < 1e-9);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn fit_fails_gracefully_on_degenerate_curves() {
        let all_sat = MissCurve {
            sizes_bytes: vec![64, 128],
            miss_rates: vec![1.0, 1.0],
        };
        assert!(fit_power_law(&all_sat, 64.0).is_none());
        let single = MissCurve {
            sizes_bytes: vec![64, 128],
            miss_rates: vec![1.0, 0.5],
        };
        assert!(fit_power_law(&single, 64.0).is_none());
    }

    #[test]
    fn nearest_lookup() {
        let c = MissCurve {
            sizes_bytes: vec![100, 200, 400],
            miss_rates: vec![0.3, 0.2, 0.1],
        };
        assert_eq!(c.nearest(90), 0.3);
        assert_eq!(c.nearest(210), 0.2);
        assert_eq!(c.nearest(10_000), 0.1);
    }

    #[test]
    fn streaming_pattern_has_no_reuse_at_small_sizes() {
        // A stream over a 2^14-line footprint misses everywhere below the
        // footprint.
        let sizes: Vec<u64> = vec![1 << 12, 1 << 14, 1 << 16];
        let curve = measure_miss_curve(
            &Pattern::Stream {
                footprint_lines: 1 << 14,
            },
            0,
            &sizes,
            1 << 15,
            1 << 15,
        );
        assert!(curve.miss_rates[0] > 0.99);
        // Once the footprint fits (sizes are bytes: 2^16 B = 2^10 lines...
        // still smaller than footprint), keep missing.
        assert!(curve.miss_rates[2] > 0.99);
    }

    #[test]
    fn streaming_fits_entirely_in_a_big_cache() {
        let footprint_lines = 1u64 << 8;
        let sizes = vec![footprint_lines * 2 * LINE_SIZE];
        let curve = measure_miss_curve(
            &Pattern::Stream { footprint_lines },
            0,
            &sizes,
            footprint_lines * 2,
            footprint_lines * 8,
        );
        assert!(curve.miss_rates[0] < 0.01, "{curve:?}");
    }
}
