//! Write-back / write-allocate semantics on top of the core cache.
//!
//! The scheduling model charges every access the same `ls`/`ll` costs, but
//! a real partitioned LLC also generates write-back traffic when dirty
//! lines are evicted — an effect the co-execution simulator can optionally
//! account for. This wrapper tracks dirty bits per resident line and
//! counts the write-backs caused by evictions.

use crate::cache::{AccessOutcome, CacheConfig, SetAssocCache};
use crate::stats::AccessStats;
use std::collections::HashSet;

/// Kind of access issued to a [`WritebackCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read: allocates on miss, does not dirty the line.
    Read,
    /// Write: allocates on miss (write-allocate) and dirties the line.
    Write,
}

/// Write-back statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WritebackStats {
    /// Dirty lines written back to memory on eviction.
    pub writebacks: u64,
    /// Write accesses observed.
    pub writes: u64,
    /// Read accesses observed.
    pub reads: u64,
}

/// A write-back, write-allocate cache: wraps [`SetAssocCache`] with dirty
/// tracking.
#[derive(Debug, Clone)]
pub struct WritebackCache {
    inner: SetAssocCache,
    dirty: HashSet<u64>,
    stats: WritebackStats,
}

impl WritebackCache {
    /// Builds a write-back cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            inner: SetAssocCache::new(config),
            dirty: HashSet::new(),
            stats: WritebackStats::default(),
        }
    }

    /// Issues one access; returns the underlying outcome and whether the
    /// access caused a write-back of an evicted dirty line.
    pub fn access(&mut self, addr: u64, kind: Access) -> (AccessOutcome, bool) {
        match kind {
            Access::Read => self.stats.reads += 1,
            Access::Write => self.stats.writes += 1,
        }
        let line = addr & !(self.inner.config().line_size - 1);
        let outcome = self.inner.access(addr);
        let mut wrote_back = false;
        if let AccessOutcome::Miss { evicted: Some(e) } = outcome {
            if self.dirty.remove(&e) {
                self.stats.writebacks += 1;
                wrote_back = true;
            }
        }
        if kind == Access::Write {
            self.dirty.insert(line);
        }
        (outcome, wrote_back)
    }

    /// Flushes the cache: all dirty residents are written back.
    pub fn flush(&mut self) -> u64 {
        let flushed = self.dirty.len() as u64;
        self.stats.writebacks += flushed;
        self.dirty.clear();
        self.inner.flush();
        flushed
    }

    /// Hit/miss statistics of the underlying cache.
    pub fn cache_stats(&self) -> &AccessStats {
        self.inner.stats()
    }

    /// Write-back statistics.
    pub fn writeback_stats(&self) -> &WritebackStats {
        &self.stats
    }

    /// Number of currently dirty resident lines.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn cache() -> WritebackCache {
        WritebackCache::new(CacheConfig {
            size_bytes: 4 * 64 * 2, // 4 sets, 2 ways
            line_size: 64,
            ways: 2,
            policy: Policy::Lru,
        })
    }

    #[test]
    fn reads_never_write_back() {
        let mut c = cache();
        for i in 0..100u64 {
            let (_, wb) = c.access(i * 64, Access::Read);
            assert!(!wb);
        }
        assert_eq!(c.writeback_stats().writebacks, 0);
        assert_eq!(c.writeback_stats().reads, 100);
    }

    #[test]
    fn evicting_dirty_line_writes_back() {
        let mut c = cache();
        let set0 = |i: u64| i * 4 * 64; // all map to set 0
        c.access(set0(0), Access::Write);
        c.access(set0(1), Access::Read);
        // Third distinct line evicts line 0 (LRU), which is dirty.
        let (_, wb) = c.access(set0(2), Access::Read);
        assert!(wb);
        assert_eq!(c.writeback_stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = cache();
        let set0 = |i: u64| i * 4 * 64;
        c.access(set0(0), Access::Read);
        c.access(set0(1), Access::Read);
        let (_, wb) = c.access(set0(2), Access::Read);
        assert!(!wb);
        assert_eq!(c.writeback_stats().writebacks, 0);
    }

    #[test]
    fn rewriting_a_line_keeps_one_dirty_entry() {
        let mut c = cache();
        c.access(0x40, Access::Write);
        c.access(0x40, Access::Write);
        c.access(0x44, Access::Write); // same line
        assert_eq!(c.dirty_lines(), 1);
        assert_eq!(c.writeback_stats().writes, 3);
    }

    #[test]
    fn flush_writes_back_all_dirty() {
        let mut c = cache();
        // Distinct sets so nothing is evicted before the flush.
        c.access(0x000, Access::Write); // set 0
        c.access(0x040, Access::Write); // set 1
        c.access(0x080, Access::Read); // set 2
        assert_eq!(c.flush(), 2);
        assert_eq!(c.writeback_stats().writebacks, 2);
        assert_eq!(c.dirty_lines(), 0);
        // Everything is gone after the flush.
        assert!(!c.access(0x000, Access::Read).0.is_hit());
    }

    #[test]
    fn dirty_line_reloaded_after_writeback_is_clean() {
        let mut c = cache();
        let set0 = |i: u64| i * 4 * 64;
        c.access(set0(0), Access::Write);
        c.access(set0(1), Access::Read);
        c.access(set0(2), Access::Read); // evicts dirty 0 -> write-back
        c.access(set0(1), Access::Read); // keep 1 warm
        c.access(set0(0), Access::Read); // reload 0, clean now (evicts 2)
        c.access(set0(3), Access::Read); // evicts LRU: line 1 (clean)
        assert_eq!(c.writeback_stats().writebacks, 1);
    }

    #[test]
    fn write_heavy_stream_writes_back_proportionally() {
        let mut c = cache();
        // Stream 1000 distinct lines, all written: every eviction is dirty.
        for i in 0..1000u64 {
            c.access(i * 64, Access::Write);
        }
        // 8 lines stay resident; the rest were evicted dirty.
        assert_eq!(c.writeback_stats().writebacks, 1000 - 8);
    }
}
