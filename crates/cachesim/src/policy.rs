//! Replacement policies for [`crate::cache::SetAssocCache`].
//!
//! Victim selection is always performed **within a way mask** so the same
//! machinery serves both unpartitioned caches (full mask) and CAT-style
//! way-partitioned caches (per-application masks).

use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};

/// Replacement policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Least-recently-used: evicts the way with the oldest last-touch time.
    Lru,
    /// First-in-first-out: evicts the way filled the longest ago.
    Fifo,
    /// Uniformly random victim among the allowed ways.
    Random,
    /// Tree-PLRU approximation of LRU (binary decision tree per set).
    /// Within a proper subset of ways the tree walk is projected onto the
    /// mask by falling back to the oldest-touch way in the mask.
    TreePlru,
}

impl Policy {
    /// All policies, for sweep-style tests and benches.
    pub const ALL: [Policy; 4] = [Self::Lru, Self::Fifo, Self::Random, Self::TreePlru];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Lru => "LRU",
            Self::Fifo => "FIFO",
            Self::Random => "Random",
            Self::TreePlru => "Tree-PLRU",
        }
    }
}

/// Per-cache replacement state. Timestamps (`touch`/`fill`) are stored per
/// way; Tree-PLRU additionally keeps one bit-tree per set.
#[derive(Debug, Clone)]
pub(crate) struct ReplacementState {
    policy: Policy,
    ways: usize,
    /// Last-touch logical time per (set, way).
    touch: Vec<u64>,
    /// Fill logical time per (set, way).
    fill: Vec<u64>,
    /// Tree-PLRU bits per set (supports up to 64 ways).
    tree: Vec<u64>,
    clock: u64,
    rng: SmallRng,
}

impl ReplacementState {
    pub(crate) fn new(policy: Policy, sets: usize, ways: usize, seed: u64) -> Self {
        assert!(ways <= 64, "at most 64 ways supported");
        Self {
            policy,
            ways,
            touch: vec![0; sets * ways],
            fill: vec![0; sets * ways],
            tree: vec![0; sets],
            clock: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Notes a hit (or a fresh fill) on `way` of `set`.
    pub(crate) fn on_touch(&mut self, set: usize, way: usize, is_fill: bool) {
        self.clock += 1;
        let i = self.idx(set, way);
        self.touch[i] = self.clock;
        if is_fill {
            self.fill[i] = self.clock;
        }
        if self.policy == Policy::TreePlru {
            self.update_tree(set, way);
        }
    }

    /// Picks the victim way within `mask` (must be non-empty and contain
    /// only valid ways).
    pub(crate) fn victim(&mut self, set: usize, mask: u64) -> usize {
        debug_assert!(mask != 0, "victim selection over empty mask");
        match self.policy {
            Policy::Lru => self.oldest_by(set, mask, /*use_fill=*/ false),
            Policy::Fifo => self.oldest_by(set, mask, /*use_fill=*/ true),
            Policy::Random => {
                let candidates: Vec<usize> =
                    (0..self.ways).filter(|w| mask >> w & 1 == 1).collect();
                candidates[self.rng.random_range(0..candidates.len())]
            }
            Policy::TreePlru => {
                let w = self.tree_walk(set);
                if mask >> w & 1 == 1 {
                    w
                } else {
                    // Projected fallback: LRU within the mask.
                    self.oldest_by(set, mask, false)
                }
            }
        }
    }

    fn oldest_by(&self, set: usize, mask: u64, use_fill: bool) -> usize {
        let src = if use_fill { &self.fill } else { &self.touch };
        (0..self.ways)
            .filter(|w| mask >> w & 1 == 1)
            .min_by_key(|&w| src[set * self.ways + w])
            .expect("non-empty mask")
    }

    /// Walks the PLRU tree towards the pseudo-least-recently-used way.
    fn tree_walk(&self, set: usize) -> usize {
        let bits = self.tree[set];
        let mut node = 0usize; // root of implicit binary tree
        let mut lo = 0usize;
        let mut hi = self.ways; // [lo, hi) leaf range
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            // bit = 1 means "left half is more recent, go right".
            if bits >> node & 1 == 1 {
                lo = mid;
                node = 2 * node + 2;
            } else {
                hi = mid;
                node = 2 * node + 1;
            }
        }
        lo
    }

    /// Flips the tree bits on the path to `way` so the walk avoids it.
    fn update_tree(&mut self, set: usize, way: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        let mut bits = self.tree[set];
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if way < mid {
                // Touched the left half: point the walk right (bit = 1).
                bits |= 1 << node;
                hi = mid;
                node = 2 * node + 1;
            } else {
                bits &= !(1 << node);
                lo = mid;
                node = 2 * node + 2;
            }
        }
        self.tree[set] = bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask(ways: usize) -> u64 {
        if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        }
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut st = ReplacementState::new(Policy::Lru, 1, 4, 0);
        for w in 0..4 {
            st.on_touch(0, w, true);
        }
        st.on_touch(0, 0, false); // refresh way 0
        assert_eq!(st.victim(0, full_mask(4)), 1);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut st = ReplacementState::new(Policy::Fifo, 1, 4, 0);
        for w in 0..4 {
            st.on_touch(0, w, true);
        }
        st.on_touch(0, 0, false); // touch but no fill
        assert_eq!(st.victim(0, full_mask(4)), 0);
    }

    #[test]
    fn lru_respects_mask() {
        let mut st = ReplacementState::new(Policy::Lru, 1, 4, 0);
        for w in 0..4 {
            st.on_touch(0, w, true);
        }
        // Oldest is way 0 but the mask only allows ways 2 and 3.
        assert_eq!(st.victim(0, 0b1100), 2);
    }

    #[test]
    fn random_stays_inside_mask() {
        let mut st = ReplacementState::new(Policy::Random, 1, 8, 7);
        for _ in 0..200 {
            let v = st.victim(0, 0b1010_0000);
            assert!(v == 5 || v == 7);
        }
    }

    #[test]
    fn random_hits_all_allowed_ways() {
        let mut st = ReplacementState::new(Policy::Random, 1, 4, 3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[st.victim(0, full_mask(4))] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn plru_walk_avoids_recent_way() {
        let mut st = ReplacementState::new(Policy::TreePlru, 1, 4, 0);
        for w in 0..4 {
            st.on_touch(0, w, true);
        }
        let v = st.victim(0, full_mask(4));
        // Way 3 was touched last; PLRU must not pick it.
        assert_ne!(v, 3);
    }

    #[test]
    fn plru_is_exact_lru_for_two_ways() {
        let mut st = ReplacementState::new(Policy::TreePlru, 1, 2, 0);
        st.on_touch(0, 0, true);
        st.on_touch(0, 1, true);
        assert_eq!(st.victim(0, 0b11), 0);
        st.on_touch(0, 0, false);
        assert_eq!(st.victim(0, 0b11), 1);
    }

    #[test]
    fn plru_masked_fallback_is_in_mask() {
        let mut st = ReplacementState::new(Policy::TreePlru, 1, 8, 0);
        for w in 0..8 {
            st.on_touch(0, w, true);
        }
        for mask in [0b0000_0001u64, 0b1000_0000, 0b0011_0000] {
            let v = st.victim(0, mask);
            assert!(mask >> v & 1 == 1, "victim {v} outside mask {mask:#b}");
        }
    }

    #[test]
    fn policies_have_names() {
        for p in Policy::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
