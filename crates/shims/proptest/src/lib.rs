//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), numeric-range and
//! tuple strategies, [`collection::vec`], [`Strategy::prop_map`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! It is a plain random-sampling property runner: every case draws fresh
//! inputs from a generator seeded by the test's name, so failures are
//! reproducible run-to-run. There is **no shrinking** — a failing case is
//! reported as-is.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// How a property test case ends when it does not simply succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`; not a failure.
    Reject,
    /// A `prop_assert!` failed with the given message.
    Fail(String),
}

/// Result type produced by a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the number of cases is tunable.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: Clone + PartialOrd> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: Clone + PartialOrd> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt as _;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, including `prop::` paths.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Builds the deterministic per-test RNG (seeded by the test's name, so a
/// failure reproduces on rerun while distinct tests explore distinct
/// streams).
pub fn runner_rng(test_name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
            for __proptest_case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                let __proptest_result: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __proptest_result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {}: {}",
                               stringify!($name), __proptest_case, msg);
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body (fails the case, with the
/// sampled inputs reported by the runner).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: `{:?}` == `{:?}`", format!($($fmt)+), l, r);
    }};
}

/// Discards the current case when its sampled inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn runner_rng_is_stable() {
        use rand::RngExt as _;
        let a: u64 = super::runner_rng("x").random();
        let b: u64 = super::runner_rng("x").random();
        assert_eq!(a, b);
        let c: u64 = super::runner_rng("y").random();
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 0.5f64..2.0,
            pair in (1u64..4, 10usize..=12),
        ) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((10..=12).contains(&pair.1));
        }

        #[test]
        fn vec_and_prop_map_compose(
            v in prop::collection::vec((1u64..5).prop_map(|n| n * 2), 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            for n in &v {
                prop_assert!(*n % 2 == 0 && (2..10).contains(n), "bad element {n}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_and_assume_work(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1, "even {} cannot be odd", n);
        }
    }

    proptest! {
        #[test]
        fn just_yields_constant(v in Just(41usize)) {
            prop_assert_eq!(v, 41);
        }
    }
}
