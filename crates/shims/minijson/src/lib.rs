//! Minimal JSON for the `cosched serve` wire protocol.
//!
//! The build is fully offline (no crates.io), so — like the `rand`,
//! `proptest` and `criterion` shims next door — this crate implements
//! exactly the surface the workspace needs: a [`Json`] value type, a
//! recursive-descent parser ([`Json::parse`]) and a compact serializer
//! (`Display`), plus typed accessors for unpacking requests.
//!
//! Deliberate properties:
//!
//! * **Round-trip-exact numbers** — values serialize through Rust's
//!   shortest-round-trip float formatting and parse back with
//!   [`str::parse::<f64>`], so a makespan crosses the wire bit-exactly
//!   (what makes the serve smoke test's determinism check meaningful).
//!   Non-finite numbers are unrepresentable in JSON and serialize as
//!   `null`; senders gate them out instead (e.g. an infinite footprint is
//!   an *absent* field).
//! * **Order-preserving objects** — objects are `Vec<(String, Json)>`, so
//!   responses serialize deterministically in insertion order.
//! * **Bounded recursion** — nesting is capped (depth 128) so a hostile
//!   line cannot blow the server's stack.
//!
//! ```
//! use minijson::Json;
//!
//! let v = Json::parse(r#"{"op":"solve","id":3,"seed":42}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("solve"));
//! assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
//! let echo = v.to_string();
//! assert_eq!(Json::parse(&echo).unwrap(), v);
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order, lookups take the **first**
    /// match (duplicate keys cannot shadow an earlier value).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses one JSON document; trailing content (other than whitespace)
    /// is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (`None` if the
    /// value is not a number, is negative, has a fractional part, or does
    /// not fit `u64` losslessly).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The numeric payload as an exact `usize` (same rules as
    /// [`Self::as_u64`], plus the value must fit `usize` — which on 32-bit
    /// targets is narrower than the f64-exact window).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The numeric payload as an exact signed integer (`None` if the value
    /// is not a number, has a fractional part, or lies outside the
    /// f64-exact window `±2^53`). The signed counterpart of
    /// [`Self::as_u64`] — what the tuner's signature buckets need, whose
    /// `⌊log2⌋` classes are negative for sub-unit quantities (and
    /// `i32::MIN` for the degenerate bucket).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.is_finite() && n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
            Some(n as i64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A number (the `From<f64>` impl, spelled for call sites that read
    /// better with a name).
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<i32> for Json {
    fn from(n: i32) -> Self {
        Json::Num(f64::from(n))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serializes a number. JSON cannot represent non-finite values; they
/// become `null` (senders are expected to gate them out beforehand).
fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("null");
    }
    // Integers within the f64-exact window print without a fraction so ids
    // and counters look like integers on the wire; everything else uses
    // Rust's shortest round-trip representation. `-0.0` keeps its sign
    // (the `as i64` cast would drop it).
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        if n == 0.0 && n.is_sign_negative() {
            f.write_str("-0")
        } else {
            write!(f, "{}", n as i64)
        }
    } else {
        write!(f, "{n}")
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    // Mirror the parser's fast path: emit contiguous runs of plain
    // characters in one call, dropping to per-character work only at the
    // (rare) escapes.
    let mut rest = s;
    while let Some(pos) = rest.find(|c: char| c == '"' || c == '\\' || (c as u32) < 0x20) {
        f.write_str(&rest[..pos])?;
        let c = rest[pos..].chars().next().expect("found char");
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c => write!(f, "\\u{:04x}", c as u32)?,
        }
        rest = &rest[pos + c.len_utf8()..];
    }
    f.write_str(rest)?;
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice is valid UTF-8 because the input is a &str and we
            // only stopped on ASCII boundaries.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require the paired \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u', "expected low surrogate escape")?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
        // `f64::from_str` saturates overflow to ±∞ instead of erroring;
        // gate it out so non-finite values can never enter the value space
        // (the module's documented invariant).
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("number out of range")),
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e3").unwrap(), Json::Num(-500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("c").unwrap().get("d").and_then(Json::as_str),
            Some("e")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "nul",
            "1 2",
            "[1,]",
            "{,}",
            "+1",
            ".5",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            // Overflow saturates f64::from_str to ∞; must be rejected, not
            // smuggled in as a non-finite value.
            "1e999",
            "-1e999",
            "[1e999]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t unicode→ nul\u{0}";
        let json = Json::Str(original.to_string()).to_string();
        assert_eq!(
            Json::parse(&json).unwrap().as_str().unwrap(),
            original,
            "{json}"
        );
        // Escapes parse too.
        assert_eq!(
            Json::parse(r#""a\/b\u0041\ud83d\ude00""#).unwrap(),
            Json::Str("a/bA😀".into())
        );
    }

    #[test]
    // The long literal is the point: more digits than the shortest
    // representation, still one exact f64.
    #[allow(clippy::excessive_precision)]
    fn numbers_round_trip_bit_exactly() {
        for n in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            1.32124942511114235e10,
            f64::MIN_POSITIVE,
            f64::MAX,
            2f64.powi(53) + 2.0,
            1e-300,
        ] {
            let s = Json::Num(n).to_string();
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} via {s}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn integer_accessors_are_exact() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(2f64.powi(60)).as_u64(), None);
        assert_eq!(Json::Num(3.0).as_usize(), Some(3));
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn signed_integer_accessor_is_exact() {
        assert_eq!(Json::Num(-7.0).as_i64(), Some(-7));
        assert_eq!(Json::Num(7.0).as_i64(), Some(7));
        assert_eq!(Json::Num(-7.5).as_i64(), None);
        assert_eq!(Json::Num(-(2f64.powi(60))).as_i64(), None);
        assert_eq!(Json::Str("-3".into()).as_i64(), None);
        // i32::MIN (the tuner's degenerate log2 bucket) survives the wire.
        let v = Json::from(i32::MIN);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_i64(), Some(i64::from(i32::MIN)));
        assert_eq!(Json::from(-42i64).to_string(), "-42");
    }

    #[test]
    fn object_builder_and_lookup_preserve_order() {
        let v = Json::obj([
            ("z", Json::from(1u64)),
            ("a", Json::from("x")),
            ("z", Json::from(2u64)), // duplicate: first wins on lookup
        ]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":"x","z":2}"#);
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn display_output_reparses_to_the_same_value() {
        let text = r#"{"apps":[{"name":"CG","work":5.7e10,"seq_fraction":0.05}],
                       "flag":true,"nothing":null,"nested":[[1,2],[3]]}"#;
        let v = Json::parse(text).unwrap();
        let round = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, round);
    }
}
