//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate provides the exact API subset the workspace uses:
//! [`SeedableRng::seed_from_u64`], the [`Rng`]/[`RngCore`] traits, the
//! [`RngExt`] extension with `random()` / `random_range()`, and the
//! [`rngs::StdRng`] / [`rngs::SmallRng`] generators.
//!
//! The generators are deterministic, high-quality xoshiro256++ /
//! SplitMix64 streams. They do **not** reproduce the bit streams of the
//! real `rand` crate — every experiment in this workspace derives its
//! randomness from explicit `u64` seeds, so only self-consistency matters.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait mirroring `rand::Rng`; automatically implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// Extension methods mirroring the `rand` 0.9 `random`/`random_range` API.
pub trait RngExt: RngCore {
    /// Samples a value uniformly over the type's natural domain
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types that can be drawn from raw random bits (the `Standard`
/// distribution of the real crate).
pub trait Standard {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit precision).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be sampled from (`Range` and `RangeInclusive` over
/// the primitive numeric types).
pub trait SampleRange<T> {
    /// Samples one value uniformly; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Generators seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used for seeding and as the `SmallRng` engine.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Workhorse generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but be defensive anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Small, fast generator: a bare SplitMix64 stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so that seeds 0, 1, 2… do not yield correlated
            // initial outputs.
            let mut s = state ^ 0x1234_5678_9ABC_DEF0;
            let _ = splitmix64(&mut s);
            Self { state: s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn std_rng_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(5usize..10);
            assert!((5..10).contains(&v));
            let w = r.random_range(1u64..=6);
            assert!((1..=6).contains(&w));
            let x = r.random_range(-3.0f64..-1.0);
            assert!((-3.0..-1.0).contains(&x));
            let y = r.random_range(0.1f64..=0.9);
            assert!((0.1..=0.9).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.random_range(0usize..6)] = true;
        }
        assert_eq!(seen, [true; 6]);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(5);
        let heads = (0..1000).filter(|_| r.random::<bool>()).count();
        assert!((300..700).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn small_rng_works_and_differs_from_std() {
        let mut s = SmallRng::seed_from_u64(9);
        let mut d = SmallRng::seed_from_u64(9);
        assert_eq!(s.random::<u64>(), d.random::<u64>());
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            use super::RngExt as _;
            rng.random()
        }
        let mut r = StdRng::seed_from_u64(1);
        let _ = draw(&mut r);
    }
}
