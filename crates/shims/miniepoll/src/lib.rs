//! Offline stand-in for the epoll bindings of `libc`/`mio`: raw syscall
//! wrappers for `epoll_create1` / `epoll_ctl` / `epoll_wait` plus an
//! `eventfd`-based cross-thread wakeup — just enough surface for one
//! readiness loop per server shard. Like the other `crates/shims/*`
//! crates it has **no dependencies** (the build is offline); the FFI
//! declarations below are the entire unsafe surface of the workspace.
//!
//! # Safety invariants
//!
//! The wrappers stay sound because the following invariants hold — they
//! are what a reviewer should check when touching this crate:
//!
//! * **Struct layout.** `epoll_ctl` / `epoll_wait` exchange
//!   [`EpollEvent`] values with the kernel, so the struct must match the
//!   kernel ABI bit for bit: `u32` events word followed by a 64-bit
//!   user-data word, **packed** (no padding between the two) on x86-64
//!   and x86 — the one architecture family where the kernel declares
//!   `epoll_event` with `__attribute__((packed))`. The `#[repr(C,
//!   packed)]` below encodes exactly that; porting this crate to another
//!   Linux architecture means auditing that attribute first.
//! * **Fd ownership.** The epoll instance and the eventfd are held as
//!   [`OwnedFd`]s, so they close exactly once, on drop. *Registered* fds
//!   are borrowed, never owned: callers must keep a registered fd open
//!   until it is [`Epoll::delete`]d or the epoll instance is dropped.
//!   (Closing a registered fd is not a leak — the kernel drops the
//!   registration with the last copy of the open file — but after a
//!   `close` the fd number can be reused, so a stale registration would
//!   alias the *new* stream. The serve reactor deletes before closing.)
//! * **Buffer validity.** [`Epoll::wait`] passes `events.as_mut_ptr()`
//!   and the buffer's `capacity()` to the kernel and then `set_len` to
//!   the return value — sound because `EpollEvent` is plain old data
//!   (any byte pattern is a valid value) and the kernel writes exactly
//!   `ret` entries.
//! * **Signal handling.** `epoll_wait` and the eventfd `read`/`write`
//!   can fail with `EINTR`; the wrappers retry internally, so callers
//!   never observe it.
//!
//! Level-triggered only: the serve reactor re-arms interest by calling
//! [`Epoll::modify`] when its write buffer empties or fills, and
//! level-triggered semantics make a missed edge impossible (the next
//! `wait` reports readiness again). `EPOLLET` is deliberately not
//! exposed.
//!
//! On non-Linux targets the same API compiles but every constructor
//! returns [`std::io::ErrorKind::Unsupported`]; gate call sites on
//! [`SUPPORTED`].

#![forbid(unsafe_op_in_unsafe_fn)]

/// `true` when this build has a real epoll behind it (Linux); on other
/// platforms every constructor returns `ErrorKind::Unsupported` and
/// callers should fall back to a threaded design.
pub const SUPPORTED: bool = cfg!(target_os = "linux");

/// What a registration waits for; readiness is reported via [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd accepts writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — while a write buffer is non-empty.
    pub const READABLE_WRITABLE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `token` the fd was registered with.
    pub token: u64,
    /// The raw `EPOLL*` bits the kernel reported.
    events: u32,
}

impl Event {
    /// Readable (`EPOLLIN`): data, or an EOF, is waiting. Reported on a
    /// peer's clean close too — the read then returns 0.
    pub fn readable(&self) -> bool {
        self.events & sys::EPOLLIN != 0
    }

    /// Writable (`EPOLLOUT`): the fd accepts writes without blocking.
    pub fn writable(&self) -> bool {
        self.events & sys::EPOLLOUT != 0
    }

    /// Hung up or errored (`EPOLLHUP` / `EPOLLERR`) — the kernel
    /// reports these even when not requested, and **keeps** reporting
    /// them level-triggered, so a caller must react (close the fd) or
    /// it will spin. The serve reactor treats either as fatal for the
    /// connection.
    pub fn closed(&self) -> bool {
        self.events & (sys::EPOLLHUP | sys::EPOLLERR) != 0
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// The kernel's `struct epoll_event`: a 32-bit events mask and a
    /// 64-bit user-data word. Packed on x86-64/x86 (see the crate docs'
    /// safety invariants); other architectures use natural alignment.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{sys, Event, Interest};
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// An epoll instance (closed on drop). Registrations are
    /// level-triggered; see the crate docs for the safety invariants.
    pub struct Epoll {
        epfd: OwnedFd,
        /// Reused kernel-side event buffer for [`Epoll::wait`].
        buffer: Vec<sys::EpollEvent>,
    }

    impl Epoll {
        /// Creates an epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; a non-negative
            // return is a freshly created fd we immediately own.
            let raw = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if raw < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                // SAFETY: `raw` is a valid fd owned by nobody else.
                epfd: unsafe { OwnedFd::from_raw_fd(raw) },
                buffer: Vec::with_capacity(64),
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, event: Option<sys::EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut sys::EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live stack
            // value for the duration of the call; the kernel only reads
            // it. The caller guarantees `fd` is open (crate invariant).
            let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` with `token` (returned verbatim in events).
        /// The fd must stay open until [`Epoll::delete`] — see the crate
        /// docs.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let event = sys::EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            self.ctl(sys::EPOLL_CTL_ADD, fd, Some(event))
        }

        /// Changes a registration's interest set (write-interest
        /// toggling is the expected use).
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let event = sys::EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            self.ctl(sys::EPOLL_CTL_MOD, fd, Some(event))
        }

        /// Removes a registration. Call *before* closing the fd (a
        /// close-then-reuse of the fd number would alias registrations).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until at least one registered fd is ready (or
        /// `timeout_ms` elapses; negative = wait forever), appending the
        /// reports to `events` (cleared first). Retries `EINTR`.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            events.clear();
            let capacity = self.buffer.capacity().max(1) as i32;
            let ready = loop {
                // SAFETY: the pointer/capacity pair describes the spare
                // buffer; the kernel writes at most `capacity` entries
                // and returns how many. EpollEvent is plain old data, so
                // set_len over kernel-written entries is sound.
                let rc = unsafe {
                    sys::epoll_wait(
                        self.epfd.as_raw_fd(),
                        self.buffer.as_mut_ptr(),
                        capacity,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            // SAFETY: the kernel initialized exactly `ready` entries
            // (`ready <= capacity` by the epoll_wait contract).
            unsafe { self.buffer.set_len(ready) };
            events.extend(self.buffer.iter().map(|e| Event {
                token: e.data,
                events: e.events,
            }));
            Ok(ready)
        }
    }

    /// A nonblocking `eventfd` wakeup: any thread [`signal`]s, the
    /// reactor registers [`fd`] for read interest and [`drain`]s on
    /// wake. The fd is wrapped in a [`File`] so reads/writes go through
    /// std (no extra FFI) and it closes on drop.
    ///
    /// [`signal`]: EventFd::signal
    /// [`fd`]: EventFd::fd
    /// [`drain`]: EventFd::drain
    pub struct EventFd {
        file: File,
    }

    impl EventFd {
        /// Creates a nonblocking, close-on-exec eventfd with count 0.
        pub fn new() -> io::Result<EventFd> {
            // SAFETY: eventfd takes no pointers; a non-negative return
            // is a freshly created fd we immediately own.
            let raw = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if raw < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `raw` is a valid fd owned by nobody else.
            Ok(EventFd {
                file: File::from(unsafe { OwnedFd::from_raw_fd(raw) }),
            })
        }

        /// The fd to register with [`Epoll::add`]; readable whenever the
        /// counter is non-zero. Borrowed by the epoll registration —
        /// keep the `EventFd` alive until deregistered (crate
        /// invariant).
        pub fn fd(&self) -> RawFd {
            self.file.as_raw_fd()
        }

        /// Wakes the owning reactor (adds 1 to the counter). Saturation
        /// (`WouldBlock` on a full counter) still means "signalled", so
        /// it is not an error; `EINTR` is retried.
        pub fn signal(&self) {
            let one = 1u64.to_ne_bytes();
            loop {
                match (&self.file).write(&one) {
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    _ => return,
                }
            }
        }

        /// Clears the counter (after a readable event), so the next
        /// [`signal`](EventFd::signal) triggers a fresh wake. Returns
        /// `true` if any signals had accumulated.
        pub fn drain(&self) -> bool {
            let mut buf = [0u8; 8];
            loop {
                match (&self.file).read(&mut buf) {
                    Ok(_) => return true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return false, // WouldBlock: already clear
                }
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "miniepoll requires Linux (check miniepoll::SUPPORTED)",
        )
    }

    /// Unsupported-platform stub; see [`super::SUPPORTED`].
    pub struct Epoll {}

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            Err(unsupported())
        }

        pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn wait(&mut self, _events: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Unsupported-platform stub; see [`super::SUPPORTED`].
    pub struct EventFd {}

    impl EventFd {
        pub fn new() -> io::Result<EventFd> {
            Err(unsupported())
        }

        pub fn fd(&self) -> RawFd {
            -1
        }

        pub fn signal(&self) {}

        pub fn drain(&self) -> bool {
            false
        }
    }
}

pub use imp::{Epoll, EventFd};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reports_readability_with_the_registered_token() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut epoll = Epoll::new().unwrap();
        epoll.add(b.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        // Nothing to read yet: a zero-timeout wait reports no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        a.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());
        epoll.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_toggles_via_modify() {
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut epoll = Epoll::new().unwrap();
        epoll.add(b.as_raw_fd(), 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        // An idle socket's send buffer has room: writable immediately
        // once write interest is armed.
        epoll
            .modify(b.as_raw_fd(), 1, Interest::READABLE_WRITABLE)
            .unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].writable());
        epoll.modify(b.as_raw_fd(), 1, Interest::READABLE).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn peer_close_reads_as_readable_eof() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut epoll = Epoll::new().unwrap();
        epoll.add(b.as_raw_fd(), 3, Interest::READABLE).unwrap();
        drop(a);
        let mut events = Vec::new();
        assert!(epoll.wait(&mut events, 1000).unwrap() >= 1);
        assert!(events[0].readable());
        let mut buf = [0u8; 8];
        let mut b = b;
        assert_eq!(b.read(&mut buf).unwrap(), 0); // EOF
    }

    #[test]
    fn eventfd_signals_across_threads_and_drains() {
        let wake = EventFd::new().unwrap();
        let mut epoll = Epoll::new().unwrap();
        epoll.add(wake.fd(), u64::MAX, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        std::thread::scope(|scope| {
            scope.spawn(|| wake.signal());
        });
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, u64::MAX);
        assert!(wake.drain());
        assert!(!wake.drain()); // already clear
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn signal_saturation_is_not_lost() {
        let wake = EventFd::new().unwrap();
        for _ in 0..10_000 {
            wake.signal();
        }
        let mut epoll = Epoll::new().unwrap();
        epoll.add(wake.fd(), 0, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert!(wake.drain());
    }
}
