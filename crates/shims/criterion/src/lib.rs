//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface used by `crates/bench` — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! as a small wall-clock harness. Each benchmark is warmed up, then timed
//! over a fixed measurement window, and the mean iteration time is printed
//! in a criterion-like one-line format. There are no statistics, plots, or
//! saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

#[derive(Debug, Clone, Copy)]
struct Timing {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Timing {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, Timing::default(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            timing: Timing::default(),
        }
    }

    /// Compatibility no-op (the real crate parses CLI arguments here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility no-op (the real crate prints a summary here).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    timing: Timing,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.timing.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.timing.measurement = d;
        self
    }

    /// Accepted for compatibility; this harness times a window rather than
    /// a fixed sample count, so the value is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.timing, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.timing, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The printable form.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    deadline: Instant,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn run_one(label: &str, timing: Timing, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: run the routine without recording.
    let mut warm = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        deadline: Instant::now() + timing.warm_up,
    };
    f(&mut warm);

    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        deadline: Instant::now() + timing.measurement,
    };
    f(&mut bencher);

    let mean = if bencher.iters_done > 0 {
        bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64
    } else {
        f64::NAN
    };
    println!(
        "{label:<50} time: [{}]   ({} iterations)",
        format_nanos(mean),
        bencher.iters_done
    );
}

fn format_nanos(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits a `main` running the given groups (for `harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Timing {
        Timing {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        }
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        run_one("test/counting", quick(), &mut |b| {
            b.iter(|| count += 1);
        });
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .sample_size(10)
            .throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function(BenchmarkId::from_parameter(8), |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 16).into_benchmark_id(), "f/16");
        assert_eq!(BenchmarkId::from_parameter(3).into_benchmark_id(), "3");
    }
}
