//! Compare every strategy of the paper — the six dominant-partition
//! heuristics, the three co-scheduling baselines and AllProcCache —
//! on one random workload, against the exact optimum.
//!
//! ```text
//! cargo run --release --example heuristic_comparison
//! ```

use coschedule::algo::{exact, Strategy};
use coschedule::model::Platform;
use workloads::rng::seeded_rng;
use workloads::synth::{Dataset, SeqFraction};

fn main() {
    // A small LLC stresses the partition decision: not everybody fits.
    let platform = Platform::taihulight().with_cache_size(150e6);
    let mut rng = seeded_rng(99);
    // Perfectly parallel instance so the exact solver applies (§4 theory).
    let apps = Dataset::Random.generate(12, SeqFraction::Zero, &mut rng);

    let reference = exact::exact_perfectly_parallel(&apps, &platform)
        .expect("exact solve");
    println!(
        "exact optimum: {:.4e} with |IC| = {} of {} applications in cache\n",
        reference.makespan,
        reference.partition.len(),
        apps.len()
    );

    let mut rows: Vec<(String, f64, usize)> = Vec::new();
    let mut strategies = Strategy::all_coscheduling();
    strategies.push(Strategy::AllProcCache);
    for s in strategies {
        // Average the randomized strategies over a few seeds.
        let runs = if s.is_randomized() { 32 } else { 1 };
        let mut total = 0.0;
        let mut cache_apps = 0;
        for seed in 0..runs {
            let mut r = seeded_rng(1000 + seed);
            let o = s.run(&apps, &platform, &mut r).unwrap();
            total += o.makespan;
            cache_apps = o.partition.len();
        }
        rows.push((s.name(), total / runs as f64, cache_apps));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("{:<22} {:>12} {:>8} {:>10}", "strategy", "makespan", "|IC|", "vs exact");
    for (name, makespan, ic) in rows {
        println!(
            "{:<22} {:>12.4e} {:>8} {:>9.2}%",
            name,
            makespan,
            ic,
            (makespan / reference.makespan - 1.0) * 100.0
        );
    }
}
