//! Compare every registered solver — the six dominant-partition
//! heuristics, the three co-scheduling baselines, AllProcCache, and the
//! refined extension — on one random workload, against the exact optimum.
//!
//! ```text
//! cargo run --release --example heuristic_comparison
//! ```

use coschedule::algo::bnb;
use coschedule::model::Platform;
use coschedule::solver::{self, Instance, SolveCtx};
use workloads::rng::seeded_rng;
use workloads::synth::{Dataset, SeqFraction};

fn main() {
    // A small LLC stresses the partition decision: not everybody fits.
    let platform = Platform::taihulight().with_cache_size(150e6);
    let mut rng = seeded_rng(99);
    // Perfectly parallel instance so the exact solver applies (§4 theory) —
    // branch-and-bound proves the optimum well beyond the old 2^n reach.
    let apps = Dataset::Random.generate(32, SeqFraction::Zero, &mut rng);

    let reference =
        bnb::branch_and_bound(&apps, &platform, &bnb::BnbConfig::default()).expect("exact solve");
    assert!(reference.optimal, "default budget must close n = 32");
    println!(
        "exact optimum: {:.4e} with |IC| = {} of {} applications in cache\n",
        reference.makespan,
        reference.partition.len(),
        apps.len()
    );

    // The instance is validated and its execution models derived once,
    // then shared by every solver in the registry.
    let instance = Instance::new(apps, platform).expect("valid instance");

    let mut rows: Vec<(String, f64, usize)> = Vec::new();
    for s in solver::all() {
        // Average the randomized solvers over a few seeds.
        let runs = if s.is_randomized() { 32 } else { 1 };
        let mut total = 0.0;
        let mut cache_apps = 0;
        for seed in 0..runs {
            let o = s
                .solve(&instance, &mut SolveCtx::seeded(1000 + seed))
                .unwrap();
            total += o.makespan;
            cache_apps = o.partition.len();
        }
        rows.push((s.name(), total / runs as f64, cache_apps));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!(
        "{:<22} {:>12} {:>8} {:>10}",
        "solver", "makespan", "|IC|", "vs exact"
    );
    for (name, makespan, ic) in rows {
        println!(
            "{:<22} {:>12.4e} {:>8} {:>9.2}%",
            name,
            makespan,
            ic,
            (makespan / reference.makespan - 1.0) * 100.0
        );
    }
}
