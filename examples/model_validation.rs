//! Validate the paper's analytic model against a discrete co-execution:
//! schedule a workload with DominantMinRatio, then actually *run* the
//! schedule on the simulated partitioned LLC and compare completion times
//! — the experiment the paper defers to future work.
//!
//! ```text
//! cargo run --release --example model_validation
//! ```

use coschedule::algo::{BuildOrder, Choice, Strategy};
use coschedule::model::{Application, Platform};
use coschedule::solver::{Instance, SolveCtx, Solver as _};
use cosim::{validate_schedule, CoSimConfig};
use rand::RngExt as _;
use workloads::rng::seeded_rng;

fn main() {
    // A platform whose d_i values are large enough that misses matter.
    let platform = Platform {
        processors: 16.0,
        cache_size: 640e6,
        ref_cache_size: 40e6,
        latency_cache: 0.17,
        latency_mem: 1.0,
        alpha: 0.5,
    };
    let mut rng = seeded_rng(2718);
    let apps: Vec<Application> = (0..5)
        .map(|i| {
            Application::perfectly_parallel(
                format!("job-{i}"),
                rng.random_range(2e6..9e6),
                rng.random_range(0.3..0.9),
                rng.random_range(0.1..0.5),
            )
        })
        .collect();

    let instance = Instance::new(apps.clone(), platform.clone()).unwrap();
    let outcome = Strategy::dominant(BuildOrder::Forward, Choice::MinRatio)
        .solve(&instance, &mut SolveCtx::seeded(2718))
        .unwrap();

    let report = validate_schedule(
        &apps,
        &platform,
        &outcome.schedule,
        CoSimConfig {
            work_scale: 2e-2,
            ..CoSimConfig::default()
        },
    );

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "app", "x_eff", "model time", "sim time", "model m", "sim m"
    );
    for (i, app) in apps.iter().enumerate() {
        println!(
            "{:<8} {:>10.3} {:>12.1} {:>12.1} {:>10.4} {:>10.4}",
            app.name,
            report.outcome.effective_fractions[i],
            report.predicted_times[i],
            report.simulated_times[i],
            report.predicted_miss_rates[i],
            report.miss_rates[i],
        );
    }
    println!(
        "\nmakespan: model {:.1} vs simulated {:.1}  (relative error {:.2}%)",
        report.predicted_makespan,
        report.simulated_makespan,
        report.relative_error * 100.0
    );

    // And what sharing the LLC (no partitioning) would have cost.
    let shared = validate_schedule(
        &apps,
        &platform,
        &outcome.schedule,
        CoSimConfig {
            work_scale: 2e-2,
            enforce_partitions: false,
            ..CoSimConfig::default()
        },
    );
    println!(
        "shared-LLC makespan: {:.1}  ({:+.2}% vs partitioned)",
        shared.simulated_makespan,
        (shared.simulated_makespan / report.simulated_makespan - 1.0) * 100.0
    );
}
