//! Cache Allocation Technology in action: protect a latency-critical
//! service from a streaming aggressor by way-partitioning the LLC.
//!
//! This example uses the `cachesim` substrate directly — the same
//! machinery the co-execution simulator builds on — to show the isolation
//! property the paper's model takes as given.
//!
//! ```text
//! cargo run --release --example cat_partitioning
//! ```

use cachesim::cache::CacheConfig;
use cachesim::partition::{PartitionedCache, WayMask};
use cachesim::policy::Policy;
use cachesim::trace::{Pattern, TraceGenerator};

const LLC: CacheConfig = CacheConfig {
    size_bytes: 2 << 20, // 2 MiB, 16 ways
    line_size: 64,
    ways: 16,
    policy: Policy::Lru,
};

/// Interleaves a cache-friendly "service" (Pareto reuse, small hot set)
/// with a cache-hostile "batch" streamer and reports both miss rates.
fn corun(enforce: bool) -> (f64, f64) {
    let masks = vec![WayMask::contiguous(0, 8), WayMask::contiguous(8, 8)];
    let mut llc = PartitionedCache::new(LLC, masks, enforce);
    // Service: strong temporal locality.
    let mut service = TraceGenerator::new(Pattern::pareto(0.5, 16.0), 1);
    // Batch job: scans a 16 MiB array over and over — classic LLC polluter.
    let mut batch = TraceGenerator::new(
        Pattern::Stream {
            footprint_lines: (16 << 20) / 64,
        },
        2,
    );
    for i in 0..2_000_000u64 {
        if i % 4 == 0 {
            llc.access(0, service.next_address());
        } else {
            // Disjoint address space for the streamer.
            llc.access(1, (1 << 40) | batch.next_address());
        }
    }
    (
        llc.partition_stats(0).miss_rate(),
        llc.partition_stats(1).miss_rate(),
    )
}

fn main() {
    println!("LLC: 2 MiB, 16-way, LRU; service on ways 0-7, batch on ways 8-15\n");
    let (svc_shared, batch_shared) = corun(false);
    let (svc_part, batch_part) = corun(true);

    println!(
        "{:<22} {:>14} {:>14}",
        "mode", "service miss%", "batch miss%"
    );
    println!(
        "{:<22} {:>14.2} {:>14.2}",
        "shared (no CAT)",
        svc_shared * 100.0,
        batch_shared * 100.0
    );
    println!(
        "{:<22} {:>14.2} {:>14.2}",
        "partitioned (CAT)",
        svc_part * 100.0,
        batch_part * 100.0
    );

    let protection = svc_shared / svc_part.max(1e-12);
    println!(
        "\npartitioning cuts the service's miss rate by {protection:.1}x; \
         the streaming batch job is insensitive either way"
    );
    assert!(
        svc_part <= svc_shared,
        "partitioning should never hurt the protected service"
    );
}
