//! Close the measurement loop: characterise a synthetic kernel with the
//! cache simulator (the repository's PEBIL stand-in), fit the power law of
//! cache misses, and feed the fitted parameters straight into the
//! scheduling model.
//!
//! ```text
//! cargo run --release --example powerlaw_measurement
//! ```

use cachesim::powerlaw::{fit_power_law, measure_miss_curve};
use cachesim::trace::{Pattern, LINE_SIZE};
use coschedule::algo::{BuildOrder, Choice, Strategy};
use coschedule::model::{Application, Platform};
use coschedule::solver::{Instance, SolveCtx, Solver as _};

fn main() {
    // 1. "Instrument" a kernel: measure its miss-rate curve on a ladder of
    //    fully-associative LRU caches.
    let pattern = Pattern::pareto(0.45, 8.0);
    let sizes: Vec<u64> = (6..=13).map(|k| (1u64 << k) * LINE_SIZE).collect();
    let curve = measure_miss_curve(&pattern, 11, &sizes, 50_000, 150_000);

    println!("{:>12} {:>10}", "cache (KiB)", "miss rate");
    for (size, miss) in curve.sizes_bytes.iter().zip(&curve.miss_rates) {
        println!("{:>12} {:>10.4}", size / 1024, miss);
    }

    // 2. Fit Eq. 1 of the paper: m(C) = m0 (C0/C)^alpha.
    let c0 = *curve.sizes_bytes.last().unwrap() as f64;
    let fit = fit_power_law(&curve, c0).expect("fittable curve");
    println!(
        "\nfit: m0 = {:.4} at C0 = {} KiB, alpha = {:.3}, r^2 = {:.3}",
        fit.m0,
        (c0 as u64) / 1024,
        fit.alpha,
        fit.r_squared
    );

    // 3. Use the measured characterisation in the scheduling model: a
    //    platform whose LLC is 8x the reference, alpha from the fit.
    let platform = Platform {
        processors: 64.0,
        cache_size: c0 * 8.0,
        ref_cache_size: c0,
        latency_cache: 0.17,
        latency_mem: 1.0,
        alpha: fit.alpha,
    };
    let apps: Vec<Application> = (0..4)
        .map(|i| {
            Application::perfectly_parallel(
                format!("kernel-{i}"),
                1e10 * (i + 1) as f64,
                0.6,
                fit.m0,
            )
        })
        .collect();
    let instance = Instance::new(apps, platform).unwrap();
    let outcome = Strategy::dominant(BuildOrder::Forward, Choice::MinRatio)
        .solve(&instance, &mut SolveCtx::seeded(3))
        .unwrap();
    println!(
        "\nco-schedule of 4 measured kernels: makespan {:.3e}, cache shares {:?}",
        outcome.makespan,
        outcome
            .schedule
            .assignments
            .iter()
            .map(|a| (a.cache * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
