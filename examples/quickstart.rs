//! Quickstart: co-schedule the six NPB applications of the paper's
//! Table 2 on the TaihuLight-like platform of §6.1, through the
//! `Instance` → `Solver` → `Outcome` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coschedule::model::Platform;
use coschedule::solver::{self, Instance, Portfolio, SolveCtx};
use workloads::npb::npb6;

fn main() {
    // The problem is built (and validated) once: the paper's platform —
    // 256 processors, 32 GB shared "LLC", ls = 0.17, ll = 1, alpha = 0.5 —
    // plus the six NPB benchmarks with a 5% sequential fraction each.
    let instance = Instance::new(npb6(&[0.05]), Platform::taihulight()).expect("valid instance");

    // The paper's flagship heuristic, addressed by its figure-legend name.
    let dmr = solver::by_name("DominantMinRatio").expect("registered solver");
    let mut ctx = SolveCtx::seeded(42);
    let outcome = dmr.solve(&instance, &mut ctx).expect("solvable instance");

    println!("solver    : {}", dmr.name());
    println!("makespan  : {:.3e} time units", outcome.makespan);
    println!(
        "cache set : {{{}}}",
        outcome
            .partition
            .members()
            .iter()
            .map(|&i| instance.apps()[i].name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\n{:<6} {:>10} {:>12}", "app", "procs", "cache frac");
    for (app, asg) in instance.apps().iter().zip(&outcome.schedule.assignments) {
        println!("{:<6} {:>10.2} {:>12.4}", app.name, asg.procs, asg.cache);
    }

    // Sanity: the schedule respects the resource constraints and all
    // applications finish simultaneously (Lemma 1 structure).
    outcome
        .schedule
        .validate(instance.apps(), instance.platform())
        .unwrap();
    assert!(outcome
        .schedule
        .is_equal_finish(instance.apps(), instance.platform(), 1e-6));

    // The same instance can be handed to every registered solver at once:
    // the Portfolio meta-solver returns the best schedule plus the
    // per-solver breakdown.
    let report = Portfolio::new(solver::all())
        .solve_detailed(&instance, &SolveCtx::seeded(42))
        .expect("at least one solver succeeds");
    println!("\n# portfolio breakdown:");
    for m in &report.members {
        match &m.result {
            Ok(o) => println!("{:<22} {:>12.4e}", m.name, o.makespan),
            Err(e) => println!("{:<22} failed: {e}", m.name),
        }
    }
    println!("winner: {}", report.best_name);

    // Compare against running the applications one after another with all
    // resources (the AllProcCache baseline).
    let apc = solver::by_name("AllProcCache")
        .unwrap()
        .solve(&instance, &mut SolveCtx::seeded(0))
        .unwrap();
    println!(
        "\nAllProcCache makespan: {:.3e}  (co-scheduling gain: {:.1}%)",
        apc.makespan,
        (1.0 - report.outcome.makespan / apc.makespan) * 100.0
    );
}
