//! Quickstart: co-schedule the six NPB applications of the paper's
//! Table 2 on the TaihuLight-like platform of §6.1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coschedule::algo::{BuildOrder, Choice, Strategy};
use coschedule::model::Platform;
use workloads::npb::npb6;
use workloads::rng::seeded_rng;

fn main() {
    // The paper's platform: 256 processors, 32 GB shared "LLC",
    // ls = 0.17, ll = 1, alpha = 0.5.
    let platform = Platform::taihulight();

    // The six NPB benchmarks with a 5% sequential fraction each.
    let apps = npb6(&[0.05]);

    // The paper's flagship heuristic: Algorithm 1 with the MinRatio choice.
    let strategy = Strategy::dominant(BuildOrder::Forward, Choice::MinRatio);
    let mut rng = seeded_rng(42);
    let outcome = strategy
        .run(&apps, &platform, &mut rng)
        .expect("valid instance");

    println!("strategy  : {}", strategy.name());
    println!("makespan  : {:.3e} time units", outcome.makespan);
    println!(
        "cache set : {{{}}}",
        outcome
            .partition
            .members()
            .iter()
            .map(|&i| apps[i].name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\n{:<6} {:>10} {:>12}", "app", "procs", "cache frac");
    for (app, asg) in apps.iter().zip(&outcome.schedule.assignments) {
        println!("{:<6} {:>10.2} {:>12.4}", app.name, asg.procs, asg.cache);
    }

    // Sanity: the schedule respects the resource constraints and all
    // applications finish simultaneously (Lemma 1 structure).
    outcome.schedule.validate(&apps, &platform).unwrap();
    assert!(outcome.schedule.is_equal_finish(&apps, &platform, 1e-6));

    // Compare against running the applications one after another with all
    // resources (the AllProcCache baseline).
    let apc = Strategy::AllProcCache
        .run(&apps, &platform, &mut rng)
        .unwrap();
    println!(
        "\nAllProcCache makespan: {:.3e}  (co-scheduling gain: {:.1}%)",
        apc.makespan,
        (1.0 - outcome.makespan / apc.makespan) * 100.0
    );
}
