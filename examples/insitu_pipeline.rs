//! The paper's motivating scenario (§1): in-situ analysis of a periodic
//! simulation.
//!
//! A cosmology code (think HACC) produces a data batch every `period` time
//! units; a set of analysis processes must digest each batch before the
//! next one lands, on a dedicated analysis node with a partitionable LLC.
//! Co-scheduling with dominant partitions lets the node absorb workloads
//! that sequential execution (AllProcCache) cannot.
//!
//! ```text
//! cargo run --release --example insitu_pipeline
//! ```

use coschedule::algo::{BuildOrder, Choice, Strategy};
use coschedule::model::{Application, Platform};
use coschedule::solver::{Instance, SolveCtx, Solver as _};
use rand::RngExt as _;
use workloads::rng::seeded_rng;

fn main() {
    let platform = Platform::taihulight();
    let mut rng = seeded_rng(2024);

    // One analysis batch: halo finding, power spectra, I/O staging, etc.
    // Work sizes vary wildly between analyses; access frequencies and miss
    // rates follow the NPB-like regime of Table 2.
    let analyses: Vec<Application> = (0..24)
        .map(|i| {
            Application::new(
                format!("analysis-{i}"),
                rng.random_range(5e9..5e11),
                rng.random_range(0.01..0.05),
                rng.random_range(0.4..0.9),
                rng.random_range(5e-4..2e-2),
            )
        })
        .collect();

    // The simulation emits a batch every `period` time units.
    let period = 5.0e10;

    // Validate once, solve many times — the Solver API's whole point.
    let instance = Instance::new(analyses.clone(), platform).unwrap();
    let strategies = [
        Strategy::AllProcCache,
        Strategy::Fair,
        Strategy::ZeroCache,
        Strategy::dominant(BuildOrder::Forward, Choice::MinRatio),
    ];

    println!("in-situ analysis batch: {} processes", analyses.len());
    println!("batch period          : {period:.2e} time units\n");
    println!(
        "{:<18} {:>14} {:>10}",
        "strategy", "makespan", "meets period?"
    );
    for s in strategies {
        let outcome = s.solve(&instance, &mut SolveCtx::seeded(7)).unwrap();
        let fits = outcome.makespan <= period;
        println!(
            "{:<18} {:>14.3e} {:>10}",
            s.name(),
            outcome.makespan,
            if fits { "yes" } else { "NO" }
        );
    }

    // Pipeline view: how many batches can each strategy sustain per unit
    // of simulation wall-clock (throughput = 1/makespan, capped by the
    // producer at 1/period)?
    println!("\nsustained pipeline throughput (batches per 1e11 time units):");
    for s in strategies {
        let outcome = s.solve(&instance, &mut SolveCtx::seeded(7)).unwrap();
        let tput = (1.0 / outcome.makespan).min(1.0 / period) * 1e11;
        println!("{:<18} {:>8.2}", s.name(), tput);
    }
}
