//! Umbrella crate re-exporting the workspace libraries, used by the
//! examples and integration tests at the repository root.
pub use cachesim;
pub use coschedule;
pub use cosim;
pub use experiments;
pub use workloads;
