//! Integration smoke test: every registered experiment runs, produces
//! well-formed data, and writes a readable CSV.

use experiments::{registry, ExpConfig};

#[test]
fn every_experiment_runs_and_writes_csv() {
    let cfg = ExpConfig::smoke();
    let dir = std::env::temp_dir().join("cache_coschedule_smoke_results");
    for e in registry() {
        let fig = (e.run)(&cfg);
        assert_eq!(fig.id, e.id, "driver returned mismatched id");
        assert!(!fig.xs.is_empty(), "{}: empty sweep", e.id);
        assert!(!fig.series.is_empty(), "{}: no series", e.id);
        for s in &fig.series {
            assert_eq!(
                s.values.len(),
                fig.xs.len(),
                "{}: ragged series {}",
                e.id,
                s.name
            );
            for (i, v) in s.values.iter().enumerate() {
                assert!(
                    v.is_finite() || v.is_nan(),
                    "{}: series {} point {i} is {v}",
                    e.id,
                    s.name
                );
            }
        }
        let path = fig.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            content.trim().lines().count(),
            fig.xs.len() + 1,
            "{}: CSV row count",
            e.id
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn normalized_figures_have_unit_reference_column() {
    let cfg = ExpConfig::smoke();
    // Figures normalized by AllProcCache.
    for id in ["fig1", "fig3", "fig5", "fig6"] {
        let e = experiments::registry::find(id).unwrap();
        let fig = (e.run)(&cfg);
        let r = fig.series_named("AllProcCache").unwrap();
        assert!(
            r.values.iter().all(|&v| (v - 1.0).abs() < 1e-9),
            "{id}: reference column not 1.0"
        );
    }
    // Figures normalized by DominantMinRatio.
    for id in ["fig2", "fig4", "fig9", "fig18"] {
        let e = experiments::registry::find(id).unwrap();
        let fig = (e.run)(&cfg);
        let r = fig.series_named("DominantMinRatio").unwrap();
        assert!(
            r.values.iter().all(|&v| (v - 1.0).abs() < 1e-9),
            "{id}: reference column not 1.0"
        );
    }
}

#[test]
fn notes_mention_paper_expectations() {
    let cfg = ExpConfig::smoke();
    for e in registry() {
        let fig = (e.run)(&cfg);
        assert!(
            !fig.notes.is_empty(),
            "{}: drivers must record qualitative notes for EXPERIMENTS.md",
            e.id
        );
    }
}
