//! Golden acceptance test for the session API: on NPB-6-derived mutation
//! sequences, an incremental re-solve must be **bit-identical** to a cold
//! solve of the mutated instance — for every registered solver (and the
//! Portfolio meta-solver), at every step, comparing the *whole* outcome
//! (makespan bits, schedule, partition, and eval-stats counters).
//!
//! Same spirit as `tests/eval_golden.rs`: any divergence, even in the last
//! ulp, is a failure — the session layer must patch derived state with
//! exactly the expressions `Instance::new` evaluates and re-run the
//! canonical solver path on it.

use coschedule::model::{Application, Platform};
use coschedule::session::{InstanceId, Session};
use coschedule::solver::{self, Instance, SolveCtx};
use workloads::npb::npb6;

/// One scripted change to the live instance.
enum Mutation {
    Add(Application),
    Remove(usize),
    Update(usize, Application),
    SetPlatform(Platform),
}

/// An NPB-6-derived workload churn: applications join, change profile,
/// and leave; finally the platform itself is reconfigured (the cold
/// fallback path).
fn mutation_sequence() -> Vec<Mutation> {
    let npb = npb6(&[0.05]);
    vec![
        // LU leaves the platform.
        Mutation::Remove(2),
        // A seventh application (an MG re-run with a bounded footprint)
        // joins.
        Mutation::Add(npb[4].clone().with_seq_fraction(0.08).with_footprint(150e6)),
        // CG's profile is re-measured.
        Mutation::Update(0, npb[0].clone().with_seq_fraction(0.12)),
        // Back-to-back join/leave churn.
        Mutation::Add(npb[2].clone()),
        Mutation::Remove(0),
        // The operator shrinks the LLC: full cold re-derivation.
        Mutation::SetPlatform(Platform::taihulight_small_llc()),
        // Churn continues on the new platform.
        Mutation::Update(1, npb[3].clone().with_seq_fraction(0.01)),
        Mutation::Remove(3),
    ]
}

fn apply(session: &mut Session, id: InstanceId, mutation: &Mutation) {
    let mut handle = session.handle(id).unwrap();
    match mutation {
        Mutation::Add(app) => {
            handle.add_app(app.clone()).unwrap();
        }
        Mutation::Remove(index) => {
            handle.remove_app(*index).unwrap();
        }
        Mutation::Update(index, app) => {
            handle.update_app(*index, app.clone()).unwrap();
        }
        Mutation::SetPlatform(platform) => {
            handle.set_platform(platform.clone()).unwrap();
        }
    }
}

/// Every solver name the acceptance bar covers: the 11 registered solvers
/// plus the Portfolio meta-solver.
fn solver_names() -> Vec<String> {
    let mut names: Vec<String> = solver::all().iter().map(|s| s.name()).collect();
    names.push("Portfolio".to_string());
    names
}

#[test]
fn incremental_resolve_is_bit_identical_to_cold_solve_for_every_solver() {
    let mut session = Session::new();
    let id = session
        .create(npb6(&[0.05]), Platform::taihulight())
        .unwrap();

    // Step 0 (no mutation yet), then one step per scripted mutation.
    let steps = mutation_sequence();
    for step in 0..=steps.len() {
        if step > 0 {
            apply(&mut session, id, &steps[step - 1]);
        }
        let seed = 42 + step as u64;
        for name in solver_names() {
            let warm = session.resolve_by_name(id, &name, seed).unwrap();
            // The cold reference: what a stateless service would do for
            // the same request — rebuild everything, then solve.
            let cold_instance = Instance::new(
                session.instance(id).unwrap().apps().to_vec(),
                session.instance(id).unwrap().platform().clone(),
            )
            .unwrap();
            let cold = solver::by_name(&name)
                .unwrap()
                .solve(&cold_instance, &mut SolveCtx::seeded(seed))
                .unwrap();
            assert_eq!(
                warm.makespan.to_bits(),
                cold.makespan.to_bits(),
                "step {step}, {name}: makespan diverged ({:.17e} vs {:.17e})",
                warm.makespan,
                cold.makespan
            );
            for (i, (w, c)) in warm
                .schedule
                .assignments
                .iter()
                .zip(&cold.schedule.assignments)
                .enumerate()
            {
                assert_eq!(
                    w.procs.to_bits(),
                    c.procs.to_bits(),
                    "step {step}, {name}: procs of app {i}"
                );
                assert_eq!(
                    w.cache.to_bits(),
                    c.cache.to_bits(),
                    "step {step}, {name}: cache of app {i}"
                );
            }
            // Everything else (partition, flags, eval-work counters) too.
            assert_eq!(warm, cold, "step {step}, {name}");
        }
    }

    // The run exercised both warm and cold solve paths.
    let stats = session.stats();
    assert!(stats.incremental_solves > 0, "no incremental solve ran");
    assert!(stats.cold_solves > 0, "no cold solve ran");
    assert_eq!(stats.memo_hits, 0, "distinct requests cannot hit the memo");
}

#[test]
fn repeated_resolve_memoizes_and_still_matches_cold() {
    let mut session = Session::new();
    let id = session
        .create(npb6(&[0.05]), Platform::taihulight())
        .unwrap();
    let first = session.resolve_by_name(id, "DominantRefined", 42).unwrap();
    let memoized = session.resolve_by_name(id, "DominantRefined", 42).unwrap();
    assert_eq!(first, memoized);
    assert_eq!(session.stats().memo_hits, 1);

    let cold = solver::by_name("DominantRefined")
        .unwrap()
        .solve(
            &Instance::new(npb6(&[0.05]), Platform::taihulight()).unwrap(),
            &mut SolveCtx::seeded(42),
        )
        .unwrap();
    assert_eq!(memoized, cold);
    // The memoized makespan is the eval_golden.rs constant for this
    // solver/seed — the session cannot drift from the pinned registry.
    assert_eq!(memoized.makespan.to_bits(), 0x42089ba6c3bb50ee);
}
