//! Integration tests of the `Instance` → `Solver` → `Outcome` API across
//! crates: registry round-trips, batch determinism, and the Portfolio
//! meta-solver on the paper's NPB-6 workload.

use coschedule::model::Platform;
use coschedule::solver::{self, solve_batch, BatchSpec, Instance, Portfolio, SolveCtx, Solver};
use coschedule::Strategy;
use workloads::npb::npb6;
use workloads::synth::{Dataset, SeqFraction};

fn npb_instance() -> Instance {
    Instance::new(npb6(&[0.05]), Platform::taihulight()).unwrap()
}

#[test]
fn registry_round_trips_names_and_behaviour() {
    let inst = npb_instance();
    for s in solver::all() {
        let looked_up = solver::by_name(&s.name())
            .unwrap_or_else(|e| panic!("{} not in registry: {e}", s.name()));
        assert_eq!(looked_up.name(), s.name());
        assert_eq!(looked_up.is_randomized(), s.is_randomized());
        let a = looked_up.solve(&inst, &mut SolveCtx::seeded(3)).unwrap();
        let b = s.solve(&inst, &mut SolveCtx::seeded(3)).unwrap();
        assert_eq!(a, b, "{} diverged after name round-trip", s.name());
    }
}

#[test]
fn strategy_enum_converts_to_registered_solvers() {
    let inst = npb_instance();
    let mut strategies = Strategy::all_coscheduling();
    strategies.push(Strategy::AllProcCache);
    strategies.push(Strategy::refined());
    for s in strategies {
        let boxed = s.to_solver();
        let via_registry = solver::by_name(&boxed.name()).unwrap();
        let a = boxed.solve(&inst, &mut SolveCtx::seeded(1)).unwrap();
        let b = via_registry.solve(&inst, &mut SolveCtx::seeded(1)).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn batch_is_deterministic_across_threads_and_reruns() {
    let solvers = solver::all();
    let refs: Vec<&dyn Solver> = solvers.iter().map(|s| s.as_ref()).collect();
    let source = |_rep: usize, rng: &mut rand::rngs::StdRng| {
        Instance::new(
            Dataset::NpbSynth.generate(10, SeqFraction::paper_default(), rng),
            Platform::taihulight(),
        )
    };
    let serial = solve_batch(&source, &refs, &BatchSpec::new(6, 0xC0FF_EE00)).unwrap();
    let parallel = solve_batch(
        &source,
        &refs,
        &BatchSpec::new(6, 0xC0FF_EE00).with_threads(4),
    )
    .unwrap();
    let rerun = solve_batch(
        &source,
        &refs,
        &BatchSpec::new(6, 0xC0FF_EE00).with_threads(2),
    )
    .unwrap();
    assert_eq!(serial, parallel, "thread count changed batch results");
    assert_eq!(serial, rerun, "rerun changed batch results");
    assert_eq!(serial.len(), 6);
    assert!(serial.iter().all(|row| row.len() == refs.len()));
}

#[test]
fn portfolio_is_never_worse_than_any_member_on_npb6() {
    let inst = npb_instance();
    let portfolio = Portfolio::new(solver::all());
    let report = portfolio
        .solve_detailed(&inst, &SolveCtx::seeded(42))
        .unwrap();
    assert_eq!(report.members.len(), solver::all().len());
    for m in &report.members {
        let o = m.result.as_ref().unwrap_or_else(|e| {
            panic!("{} failed on NPB-6: {e}", m.name);
        });
        assert!(
            report.outcome.makespan <= o.makespan + f64::EPSILON,
            "Portfolio ({}) worse than member {} ({} vs {})",
            report.outcome.makespan,
            m.name,
            report.outcome.makespan,
            o.makespan
        );
        o.is_solved_by_portfolio_member_sanity(&inst);
    }
    // The winner's outcome is one of the members' outcomes.
    let winner = report.members[report.best_index].result.as_ref().unwrap();
    assert_eq!(winner, &report.outcome);
}

/// Helper extension used by the portfolio test: every member outcome must
/// itself be a feasible schedule for the instance.
trait OutcomeSanity {
    fn is_solved_by_portfolio_member_sanity(&self, inst: &Instance);
}

impl OutcomeSanity for coschedule::Outcome {
    fn is_solved_by_portfolio_member_sanity(&self, inst: &Instance) {
        assert!(self.makespan.is_finite() && self.makespan > 0.0);
        if self.concurrent {
            self.schedule
                .validate(inst.apps(), inst.platform())
                .unwrap();
        }
    }
}

#[test]
fn portfolio_solves_through_the_registry_too() {
    let inst = npb_instance();
    let via_registry = solver::by_name("Portfolio").unwrap();
    let direct = Portfolio::new(solver::all());
    let a = via_registry.solve(&inst, &mut SolveCtx::seeded(9)).unwrap();
    let b = direct.solve(&inst, &mut SolveCtx::seeded(9)).unwrap();
    assert_eq!(a, b);
    // On NPB-6 the refined extension wins; the portfolio must match its
    // makespan exactly.
    let refined = solver::by_name("DominantRefined")
        .unwrap()
        .solve(&inst, &mut SolveCtx::seeded(0))
        .unwrap();
    assert!(a.makespan <= refined.makespan);
}

#[test]
fn unknown_solver_lookups_carry_the_registry() {
    match solver::by_name("  DominantMunRatio ") {
        Err(coschedule::CoschedError::UnknownSolver { name, available }) => {
            assert_eq!(name, "  DominantMunRatio ");
            assert_eq!(available, solver::names());
        }
        other => panic!("unexpected: {:?}", other.map(|s| s.name())),
    }
    // Normalization: whitespace and case never cause a miss.
    assert_eq!(
        solver::by_name("  dominantminratio\n").unwrap().name(),
        "DominantMinRatio"
    );
}

#[test]
fn solve_ctx_seed_controls_randomized_solvers_only() {
    let inst = npb_instance();
    let dmr = solver::by_name("DominantMinRatio").unwrap();
    let a = dmr.solve(&inst, &mut SolveCtx::seeded(1)).unwrap();
    let b = dmr.solve(&inst, &mut SolveCtx::seeded(2)).unwrap();
    assert_eq!(a, b, "deterministic solver depended on the ctx seed");

    let rp = solver::by_name("RandomPart").unwrap();
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..16 {
        let o = rp.solve(&inst, &mut SolveCtx::seeded(seed)).unwrap();
        distinct.insert(o.partition.members().to_vec());
    }
    assert!(distinct.len() > 1, "RandomPart ignored the ctx seed");
}
