//! Eval-kernel edge cases the session mutations hit: `n = 0` and `n = 1`
//! sets, removing the last application, and join/leave round-trips that
//! must restore bit-identical `EvalSet` contents.
//!
//! Companion to `tests/eval_equivalence.rs` (which pins the kernels to the
//! scalar reference on *static* instances); here the instances *churn*
//! through `coschedule::session` mutations.

use coschedule::model::{Application, Platform};
use coschedule::session::Session;
use coschedule::solver::Instance;
use coschedule::{CoschedError, EvalScratch, EvalSet};
use proptest::prelude::*;

fn pf() -> Platform {
    Platform::taihulight()
}

/// Bit-exact comparison over every column the kernels read.
fn assert_eval_bits_equal(a: &EvalSet, b: &EvalSet, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length");
    let columns: [(&str, &[f64], &[f64]); 7] = [
        ("work", a.work(), b.work()),
        ("seq_fraction", a.seq_fractions(), b.seq_fractions()),
        ("access_freq", a.access_freqs(), b.access_freqs()),
        ("cap", a.caps(), b.caps()),
        ("d", a.d(), b.d()),
        ("weight", a.weights(), b.weights()),
        ("threshold", a.thresholds(), b.thresholds()),
    ];
    for (name, left, right) in columns {
        for (i, (x, y)) in left.iter().zip(right).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: column {name}, app {i} ({x:?} vs {y:?})"
            );
        }
    }
}

#[test]
fn empty_eval_set_kernels_are_total() {
    // `n = 0` never reaches a solver (instances are non-empty), but the
    // kernels themselves must stay total: the simulator-validation path
    // calls them on raw app slices.
    let eval = EvalSet::of(&[], &pf());
    assert!(eval.is_empty());
    assert_eq!(eval.len(), 0);
    assert_eq!(eval.makespan(&[], &[]), 0.0);
    assert_eq!(eval.sequential_makespan(), 0.0);
    let mut out = vec![99.0];
    eval.seq_costs_into(&[], &mut out);
    assert!(out.is_empty(), "kernels clear their output buffers");
    eval.exec_times_into(&[], &[], &mut out);
    assert!(out.is_empty());
    eval.power_law_miss_rates_into(&[], &mut out);
    assert!(out.is_empty());
    let mut scratch = EvalScratch::new();
    assert!(scratch.best_candidate(&eval, &[(&[], &[])]).is_some());
}

#[test]
fn single_app_instance_solves_and_mutates() {
    let cg = Application::new("CG", 5.70e10, 0.05, 0.535, 6.59e-4);
    let mut session = Session::new();
    let id = session.create(vec![cg.clone()], pf()).unwrap();
    // n = 1: the whole machine and cache go to the only application.
    let outcome = session.resolve_by_name(id, "DominantMinRatio", 0).unwrap();
    assert_eq!(outcome.schedule.len(), 1);
    assert!((outcome.schedule.assignments[0].procs - 256.0).abs() < 1e-6);
    assert!((outcome.schedule.assignments[0].cache - 1.0).abs() < 1e-12);

    // Removing the last application is rejected and changes nothing.
    let err = session.handle(id).unwrap().remove_app(0).unwrap_err();
    assert_eq!(err, CoschedError::EmptyInstance);
    assert_eq!(session.revision(id).unwrap(), 0);
    assert_eq!(session.instance(id).unwrap().apps(), &[cg.clone()][..]);

    // Grow to 2, shrink back to 1 — now removal of the *other* app works
    // and the survivor still solves.
    {
        let mut handle = session.handle(id).unwrap();
        handle
            .add_app(Application::new("BT", 2.10e11, 0.03, 0.829, 7.31e-3))
            .unwrap();
        handle.remove_app(0).unwrap();
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.instance().apps()[0].name, "BT");
    }
    let outcome = session.resolve_by_name(id, "DominantMinRatio", 0).unwrap();
    assert!((outcome.schedule.assignments[0].cache - 1.0).abs() < 1e-12);
}

fn arb_app_row() -> impl Strategy<Value = (f64, f64, f64, f64, f64)> {
    (
        1e6f64..1e12,  // work
        0.0f64..0.6,   // seq fraction
        0.0f64..1.0,   // access frequency
        0.0f64..1.0,   // reference miss rate (0 exercises d = 0)
        0.001f64..2.0, // footprint as a multiple of the LLC (>= 1 → unbounded)
    )
}

fn build_app(i: usize, row: (f64, f64, f64, f64, f64), platform: &Platform) -> Application {
    let (w, s, f, m, fp) = row;
    let app = Application::new(format!("P{i}"), w, s, f, m);
    if fp < 1.0 {
        app.with_footprint(fp * platform.cache_size)
    } else {
        app
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `add_app` → `remove_app` of the same (last) application restores
    /// the `EvalSet` bit-for-bit: join/leave churn can never corrupt the
    /// cached derived state of the surviving applications.
    #[test]
    fn add_then_remove_restores_eval_set_bits(
        rows in proptest::collection::vec(arb_app_row(), 1..10),
        joiner in arb_app_row(),
    ) {
        let platform = pf();
        let apps: Vec<Application> = rows
            .iter()
            .enumerate()
            .map(|(i, &row)| build_app(i, row, &platform))
            .collect();
        let mut session = Session::new();
        let id = session.create(apps.clone(), platform.clone()).unwrap();
        let baseline = session.instance(id).unwrap().eval().clone();

        let n = apps.len();
        {
            let mut handle = session.handle(id).unwrap();
            let index = handle.add_app(build_app(99, joiner, &platform)).unwrap();
            prop_assert_eq!(index, n);
            handle.remove_app(index).unwrap();
        }

        let restored = session.instance(id).unwrap().eval();
        assert_eval_bits_equal(restored, &baseline, "after add→remove");
        // And both equal a from-scratch rebuild of the same apps.
        let rebuilt = Instance::new(apps, platform).unwrap();
        assert_eval_bits_equal(restored, rebuilt.eval(), "vs rebuild");
    }

    /// Removing an *interior* application leaves exactly the rebuild of
    /// the remaining list (tail columns shift, values untouched).
    #[test]
    fn interior_removal_matches_rebuild_bits(
        rows in proptest::collection::vec(arb_app_row(), 2..10),
        pick in 0usize..10,
    ) {
        let platform = pf();
        let apps: Vec<Application> = rows
            .iter()
            .enumerate()
            .map(|(i, &row)| build_app(i, row, &platform))
            .collect();
        let index = pick % apps.len();
        let mut session = Session::new();
        let id = session.create(apps.clone(), platform.clone()).unwrap();
        session.handle(id).unwrap().remove_app(index).unwrap();

        let mut survivors = apps;
        survivors.remove(index);
        let rebuilt = Instance::new(survivors, platform).unwrap();
        assert_eval_bits_equal(
            session.instance(id).unwrap().eval(),
            rebuilt.eval(),
            "interior removal",
        );
        prop_assert_eq!(session.instance(id).unwrap().models(), rebuilt.models());
    }
}
