//! Serve↔client loopback smoke: a real `TcpListener` on `127.0.0.1:0`, the
//! canned create → mutate → solve → stats → list script over actual
//! sockets, and a determinism check — two fresh servers given the same
//! request lines must produce byte-identical response lines (the solve
//! responses carry round-trip-exact makespans, so this pins numerical
//! determinism end to end, through the wire format).

use experiments::serve::{client_exchange, smoke_script, Server};
use minijson::Json;

fn run_script(script: &[String]) -> Vec<String> {
    let mut server = Server::bind("127.0.0.1:0").expect("bind 127.0.0.1:0");
    server.state_mut().allow_shutdown = true;
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    let responses = client_exchange(addr, script).expect("loopback exchange");
    handle
        .join()
        .expect("server thread")
        .expect("server run result");
    responses
}

#[test]
fn loopback_round_trip_is_ok_and_deterministic() {
    let script = smoke_script();
    let responses = run_script(&script);
    assert_eq!(responses.len(), script.len());
    for (request, response) in script.iter().zip(&responses) {
        let v = Json::parse(response).unwrap_or_else(|e| panic!("{response}: {e}"));
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {request} answered {response}"
        );
    }

    // Fixed seed ⇒ byte-identical responses from a fresh server.
    let again = run_script(&script);
    assert_eq!(responses, again, "same script, same seed, same bytes");

    // Spot-check the solve responses carry the expected shape and modes.
    let first_solve = Json::parse(&responses[1]).unwrap();
    assert_eq!(
        first_solve.get("mode").and_then(Json::as_str),
        Some("cold"),
        "first solve of a fresh instance is cold"
    );
    assert!(first_solve.get("makespan").and_then(Json::as_f64).unwrap() > 0.0);
    let second_solve = Json::parse(&responses[3]).unwrap();
    assert_eq!(
        second_solve.get("mode").and_then(Json::as_str),
        Some("incremental"),
        "post-mutation solve reuses the patched state"
    );
    let stats = Json::parse(&responses[6]).unwrap();
    assert_eq!(stats.get("solves").and_then(Json::as_u64), Some(3));
    assert_eq!(
        stats.get("incremental_solves").and_then(Json::as_u64),
        Some(2)
    );
}

#[test]
fn loopback_solve_matches_direct_solver_bit_exactly() {
    use coschedule::model::Platform;
    use coschedule::solver::{self, Instance, SolveCtx};

    let create = Json::obj([
        ("op", Json::from("create")),
        (
            "apps",
            Json::arr(
                workloads::npb::npb6(&[0.05])
                    .iter()
                    .map(experiments::serve::app_to_json),
            ),
        ),
    ])
    .to_string();
    let script = vec![
        create,
        r#"{"op":"solve","id":0,"solver":"DominantRefined","seed":42,"schedule":false}"#.into(),
        r#"{"op":"shutdown"}"#.into(),
    ];
    let responses = run_script(&script);
    let served = Json::parse(&responses[1]).unwrap();
    let direct = solver::by_name("DominantRefined")
        .unwrap()
        .solve(
            &Instance::new(workloads::npb::npb6(&[0.05]), Platform::taihulight()).unwrap(),
            &mut SolveCtx::seeded(42),
        )
        .unwrap();
    assert_eq!(
        served
            .get("makespan")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
        direct.makespan.to_bits(),
        "makespan must cross the wire bit-exactly"
    );
    // Which, transitively, is the eval_golden.rs pinned constant.
    assert_eq!(direct.makespan.to_bits(), 0x42089ba6c3bb50ee);
}

#[test]
fn errors_do_not_poison_the_connection() {
    let script: Vec<String> = vec![
        r#"{"op":"solve","id":5}"#.into(), // unknown instance
        "garbage".into(),                  // malformed JSON
        "   ".into(),                      // blank line: still one response
        r#"{"op":"solvers"}"#.into(),      // still served afterwards
        r#"{"op":"shutdown"}"#.into(),
    ];
    let responses = run_script(&script);
    assert_eq!(
        Json::parse(&responses[0])
            .unwrap()
            .get("ok")
            .and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(
        Json::parse(&responses[1])
            .unwrap()
            .get("ok")
            .and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(
        Json::parse(&responses[2])
            .unwrap()
            .get("ok")
            .and_then(Json::as_bool),
        Some(false),
        "blank line must be answered, not skipped"
    );
    let solvers = Json::parse(&responses[3]).unwrap();
    assert_eq!(solvers.get("ok").and_then(Json::as_bool), Some(true));
    assert!(solvers.get("solvers").unwrap().as_array().unwrap().len() >= 11);
}
