//! Serve↔client loopback smoke: a real `TcpListener` on `127.0.0.1:0`, the
//! canned create → mutate → solve → stats → list → metrics script over
//! actual sockets, and determinism checks — two fresh servers given the
//! same request lines must produce byte-identical response lines (the
//! solve responses carry round-trip-exact makespans, so this pins
//! numerical determinism end to end, through the wire format), and the
//! sharded server (`workers = 4`) must answer every non-`metrics` request
//! with the same bytes as the single-worker server.

mod common;

use common::{mask_reactor_wakeups, run_script};
use experiments::serve::{pipelined_exchange, smoke_script, Server};
use minijson::Json;

#[test]
fn loopback_round_trip_is_ok_and_deterministic() {
    let script = smoke_script();
    let responses = run_script(1, &script);
    assert_eq!(responses.len(), script.len());
    for (request, response) in script.iter().zip(&responses) {
        let v = Json::parse(response).unwrap_or_else(|e| panic!("{response}: {e}"));
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {request} answered {response}"
        );
    }

    // Fixed seed ⇒ byte-identical responses from a fresh server (modulo
    // the wall-clock latency percentiles in `metrics`; see the mask).
    let again = run_script(1, &script);
    let masked = |lines: &[String]| {
        lines
            .iter()
            .map(|r| mask_reactor_wakeups(r))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        masked(&responses),
        masked(&again),
        "same script, same seed, same bytes"
    );

    // Spot-check the solve responses carry the expected shape and modes.
    let first_solve = Json::parse(&responses[1]).unwrap();
    assert_eq!(
        first_solve.get("mode").and_then(Json::as_str),
        Some("cold"),
        "first solve of a fresh instance is cold"
    );
    assert!(first_solve.get("makespan").and_then(Json::as_f64).unwrap() > 0.0);
    let second_solve = Json::parse(&responses[3]).unwrap();
    assert_eq!(
        second_solve.get("mode").and_then(Json::as_str),
        Some("incremental"),
        "post-mutation solve reuses the patched state"
    );
    let stats = Json::parse(&responses[6]).unwrap();
    assert_eq!(stats.get("solves").and_then(Json::as_u64), Some(3));
    assert_eq!(
        stats.get("incremental_solves").and_then(Json::as_u64),
        Some(2)
    );
}

#[test]
fn sharded_smoke_matches_single_worker_byte_for_byte() {
    // The identity contract of the sharded front-end: a fixed lock-step
    // trace gets payload-identical responses at any worker count. Only
    // `metrics` is exempt — it reports one row per shard by design.
    let script = smoke_script();
    let single = run_script(1, &script);
    let sharded = run_script(4, &script);
    // And the sharded server is deterministic across restarts too — up
    // to the one timing-dependent counter the reactor reports
    // (`reactor_wakeups`; see `mask_reactor_wakeups`).
    let masked = |responses: &[String]| -> Vec<String> {
        responses.iter().map(|r| mask_reactor_wakeups(r)).collect()
    };
    assert_eq!(
        masked(&sharded),
        masked(&run_script(4, &script)),
        "sharded restarts differ"
    );
    for ((request, one), four) in script.iter().zip(&single).zip(&sharded) {
        let is_metrics = Json::parse(request)
            .unwrap()
            .get("op")
            .and_then(Json::as_str)
            == Some("metrics");
        if is_metrics {
            let v = Json::parse(four).unwrap();
            assert_eq!(v.get("workers").and_then(Json::as_u64), Some(4), "{four}");
            assert_eq!(
                v.get("shards").and_then(Json::as_array).unwrap().len(),
                4,
                "{four}"
            );
            continue;
        }
        assert_eq!(one, four, "workers=4 diverged from workers=1 on {request}");
    }
}

#[test]
fn pipelined_client_gets_in_order_responses_from_the_sharded_server() {
    // The multiplexing path: every request of the script is in flight on
    // one connection at once; the server's per-connection writer must
    // still deliver responses in request order, byte-identical to the
    // lock-step exchange.
    let script = smoke_script();
    let lock_step = run_script(4, &script);

    let mut server = Server::bind("127.0.0.1:0").expect("bind 127.0.0.1:0");
    server.config_mut().allow_shutdown = true;
    server.config_mut().workers = 4;
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    let piped = pipelined_exchange(addr, &script).expect("pipelined exchange");
    handle.join().expect("server thread").expect("server run");

    assert_eq!(piped.len(), script.len());
    // The pipelined trace is NOT lock-step, so ops with cross-instance
    // visibility (`stats`, `list`, `metrics`) may legitimately observe
    // requests that are still in flight; the per-instance ops must match
    // exactly.
    for ((request, a), b) in script.iter().zip(&lock_step).zip(&piped) {
        let op = Json::parse(request)
            .unwrap()
            .get("op")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if matches!(op.as_str(), "stats" | "list" | "metrics") {
            assert_eq!(
                Json::parse(b).unwrap().get("ok").and_then(Json::as_bool),
                Some(true),
                "{b}"
            );
            continue;
        }
        assert_eq!(a, b, "pipelined {op} diverged from lock-step");
    }
}

#[test]
fn loopback_solve_matches_direct_solver_bit_exactly() {
    use coschedule::model::Platform;
    use coschedule::solver::{self, Instance, SolveCtx};

    let create = Json::obj([
        ("op", Json::from("create")),
        (
            "apps",
            Json::arr(
                workloads::npb::npb6(&[0.05])
                    .iter()
                    .map(experiments::serve::app_to_json),
            ),
        ),
    ])
    .to_string();
    let script = vec![
        create,
        r#"{"op":"solve","id":0,"solver":"DominantRefined","seed":42,"schedule":false}"#.into(),
        r#"{"op":"shutdown"}"#.into(),
    ];
    let responses = run_script(1, &script);
    let served = Json::parse(&responses[1]).unwrap();
    let direct = solver::by_name("DominantRefined")
        .unwrap()
        .solve(
            &Instance::new(workloads::npb::npb6(&[0.05]), Platform::taihulight()).unwrap(),
            &mut SolveCtx::seeded(42),
        )
        .unwrap();
    assert_eq!(
        served
            .get("makespan")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
        direct.makespan.to_bits(),
        "makespan must cross the wire bit-exactly"
    );
    // Which, transitively, is the eval_golden.rs pinned constant.
    assert_eq!(direct.makespan.to_bits(), 0x42089ba6c3bb50ee);
    // The sharded server serves the same bits.
    assert_eq!(responses, run_script(4, &script));
}

#[test]
fn batch_op_is_byte_identical_to_sequential_exchanges_at_any_worker_count() {
    // The same requests, once as individual lines and once wrapped in a
    // single `batch` envelope: the combined response must embed exactly
    // the bytes the sequential exchange produced — through real sockets,
    // against both front-ends (the sharded router flattens the batch by
    // routing each sub-request lock-step).
    let script: Vec<String> = smoke_script()
        .into_iter()
        .filter(|line| {
            // `metrics` is worker-count-dependent by design; `shutdown`
            // must stay a top-level line so the server exits.
            let op = Json::parse(line)
                .unwrap()
                .get("op")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            !matches!(op.as_str(), "metrics" | "shutdown")
        })
        .collect();
    let envelope = Json::obj([
        ("op", Json::from("batch")),
        (
            "requests",
            Json::Arr(script.iter().map(|l| Json::parse(l).unwrap()).collect()),
        ),
    ])
    .to_string();
    let batch_script = vec![envelope, r#"{"op":"shutdown"}"#.to_string()];

    let mut sequential_script = script.clone();
    sequential_script.push(r#"{"op":"shutdown"}"#.to_string());

    for workers in [1, 4] {
        let sequential = run_script(workers, &sequential_script);
        let batched = run_script(workers, &batch_script);
        let combined = Json::parse(&batched[0]).unwrap();
        assert_eq!(combined.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            combined.get("count").and_then(Json::as_u64),
            Some(script.len() as u64),
            "workers={workers}"
        );
        let responses = combined.get("responses").and_then(Json::as_array).unwrap();
        for (i, (embedded, direct)) in responses.iter().zip(&sequential).enumerate() {
            assert_eq!(
                &embedded.to_string(),
                direct,
                "workers={workers}: batch slot {i} diverged from the sequential exchange"
            );
        }
    }

    // And the two front-ends agree with each other on the whole batch.
    assert_eq!(
        run_script(1, &batch_script)[0],
        run_script(4, &batch_script)[0],
        "sharded batch diverged from single-worker batch"
    );
}

#[test]
fn errors_do_not_poison_the_connection() {
    let script: Vec<String> = vec![
        r#"{"op":"solve","id":5}"#.into(), // unknown instance
        "garbage".into(),                  // malformed JSON
        "   ".into(),                      // blank line: still one response
        r#"{"op":"solvers"}"#.into(),      // still served afterwards
        r#"{"op":"shutdown"}"#.into(),
    ];
    for workers in [1, 4] {
        let responses = run_script(workers, &script);
        let unknown = Json::parse(&responses[0]).unwrap();
        assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));
        // Regression (multiplexing clients correlate by id): the error
        // echoes the id the request carried.
        assert_eq!(
            unknown.get("id").and_then(Json::as_u64),
            Some(5),
            "workers={workers}: {}",
            responses[0]
        );
        assert_eq!(
            Json::parse(&responses[1])
                .unwrap()
                .get("ok")
                .and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            Json::parse(&responses[2])
                .unwrap()
                .get("ok")
                .and_then(Json::as_bool),
            Some(false),
            "blank line must be answered, not skipped"
        );
        let solvers = Json::parse(&responses[3]).unwrap();
        assert_eq!(solvers.get("ok").and_then(Json::as_bool), Some(true));
        assert!(solvers.get("solvers").unwrap().as_array().unwrap().len() >= 11);
    }
}
