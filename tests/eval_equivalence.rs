//! Equivalence property suite: the struct-of-arrays kernels of
//! `coschedule::eval` must agree with the scalar Eq. 2 reference
//! implementation in `coschedule::model` — including the `procs <= 0 → +∞`
//! and `d = 0` edge cases — for random instances and random (infeasible
//! included) resource vectors.
//!
//! The kernels are written to perform the same floating-point operations
//! in the same order as the scalar path, so in practice they agree
//! *bit-for-bit*; the assertions below use `REL_TOL` as the documented
//! contract plus exactness checks where the guarantee is absolute.

use coschedule::eval::{EvalScratch, EvalSet};
use coschedule::model::{exec_time, seq_cost, Application, Platform, Schedule};
use coschedule::theory::proc_alloc::{equal_finish_split, equal_finish_split_eval};
use coschedule::REL_TOL;
use proptest::prelude::*;

/// Relative agreement within `REL_TOL`, treating equal infinities as equal.
fn close(a: f64, b: f64) -> bool {
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

fn arb_app() -> impl Strategy<Value = (f64, f64, f64, f64, f64)> {
    (
        1e6f64..1e12,  // work
        0.0f64..0.6,   // seq fraction
        0.0f64..1.0,   // access frequency
        0.0f64..1.0,   // reference miss rate (0 exercises d = 0)
        0.001f64..2.0, // footprint as a multiple of the LLC
    )
}

fn build(rows: &[(f64, f64, f64, f64, f64)], platform: &Platform) -> Vec<Application> {
    rows.iter()
        .enumerate()
        .map(|(i, &(w, s, f, m, fp))| {
            let app = Application::new(format!("P{i}"), w, s, f, m);
            if fp < 1.0 {
                // Finite footprints below the LLC exercise the cap path.
                app.with_footprint(fp * platform.cache_size)
            } else {
                app
            }
        })
        .collect()
}

proptest! {
    /// Batched execution times and sequential costs agree with the scalar
    /// reference elementwise, and the makespan kernel with the Schedule
    /// evaluation — including non-positive processor shares.
    #[test]
    fn kernels_agree_with_scalar_reference(
        rows in proptest::collection::vec(arb_app(), 1..12),
        procs_raw in proptest::collection::vec(-1.0f64..300.0, 12),
        cache_raw in proptest::collection::vec(0.0f64..1.0, 12),
    ) {
        let platform = Platform::taihulight().with_cache_size(500e6);
        let apps = build(&rows, &platform);
        let n = apps.len();
        let procs = &procs_raw[..n];
        let cache = &cache_raw[..n];
        let eval = EvalSet::of(&apps, &platform);

        let mut times = Vec::new();
        eval.exec_times_into(procs, cache, &mut times);
        let mut costs = Vec::new();
        eval.seq_costs_into(cache, &mut costs);
        for i in 0..n {
            let scalar_t = exec_time(&apps[i], &platform, procs[i], cache[i]);
            prop_assert!(close(times[i], scalar_t), "exec {i}: {} vs {scalar_t}", times[i]);
            prop_assert_eq!(times[i].is_infinite(), procs[i] <= 0.0, "inf iff p <= 0");
            let scalar_c = seq_cost(&apps[i], &platform, cache[i]);
            prop_assert!(close(costs[i], scalar_c), "seq {i}: {} vs {scalar_c}", costs[i]);
        }
        let schedule = Schedule::from_parts(procs, cache);
        let scalar_mk = schedule.makespan(&apps, &platform);
        let soa_mk = eval.makespan(procs, cache);
        prop_assert!(close(soa_mk, scalar_mk), "makespan {soa_mk} vs {scalar_mk}");
        // The design guarantee is stronger than REL_TOL: same operations,
        // same order, identical bits.
        prop_assert_eq!(soa_mk.to_bits(), scalar_mk.to_bits());
    }

    /// Applications that never miss (d = 0) evaluate identically on both
    /// paths for any fraction, including the zero-cache saturation.
    #[test]
    fn zero_d_edge_case_agrees(
        w in 1e6f64..1e12,
        s in 0.0f64..0.6,
        f in 0.0f64..1.0,
        p in 0.1f64..300.0,
        x in 0.0f64..1.0,
    ) {
        let platform = Platform::taihulight();
        let app = Application::new("Z", w, s, f, 0.0);
        let eval = EvalSet::of(std::slice::from_ref(&app), &platform);
        prop_assert_eq!(
            eval.exec_time_at(0, p, x).to_bits(),
            exec_time(&app, &platform, p, x).to_bits()
        );
        prop_assert_eq!(
            eval.seq_cost_at(0, x).to_bits(),
            seq_cost(&app, &platform, x).to_bits()
        );
    }

    /// The SoA equal-finish entry point (the bisection every heuristic
    /// rides on) is bit-identical to the scalar one on random instances
    /// and unnormalised cache vectors.
    #[test]
    fn equal_finish_paths_agree(
        rows in proptest::collection::vec(arb_app(), 1..10),
        cache_raw in proptest::collection::vec(0.0f64..0.5, 10),
    ) {
        let platform = Platform::taihulight().with_cache_size(800e6);
        let apps = build(&rows, &platform);
        let cache = &cache_raw[..apps.len()];
        let eval = EvalSet::of(&apps, &platform);
        let mut scratch = EvalScratch::new();
        let scalar = equal_finish_split(&apps, &platform, cache);
        let soa = equal_finish_split_eval(&eval, cache, &mut scratch);
        match (scalar, soa) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
                for (u, v) in a.procs.iter().zip(&b.procs) {
                    prop_assert_eq!(u.to_bits(), v.to_bits());
                }
            }
            (a, b) => prop_assert!(false, "paths diverged: {a:?} vs {b:?}"),
        }
    }

    /// The candidate-batch evaluator scores exactly what per-candidate
    /// makespan evaluation would.
    #[test]
    fn candidate_batch_matches_individual_scores(
        rows in proptest::collection::vec(arb_app(), 1..8),
        seeds in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let platform = Platform::taihulight();
        let apps = build(&rows, &platform);
        let n = apps.len();
        let eval = EvalSet::of(&apps, &platform);
        let mut scratch = EvalScratch::new();
        let vectors: Vec<(Vec<f64>, Vec<f64>)> = seeds
            .iter()
            .map(|&t| {
                let procs = vec![platform.processors * (0.1 + t) / n as f64; n];
                let cache = vec![t / n as f64; n];
                (procs, cache)
            })
            .collect();
        let candidates: Vec<(&[f64], &[f64])> = vectors
            .iter()
            .map(|(p, c)| (p.as_slice(), c.as_slice()))
            .collect();
        let scores = scratch.score_candidates(&eval, &candidates).to_vec();
        for (k, (p, c)) in vectors.iter().enumerate() {
            let schedule = Schedule::from_parts(p, c);
            prop_assert_eq!(
                scores[k].to_bits(),
                schedule.makespan(&apps, &platform).to_bits(),
                "candidate {}", k
            );
        }
    }
}
