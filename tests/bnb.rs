//! Integration tests of the branch-and-bound exact solver: bit-identity
//! with the `2^n` enumerator oracle, serial/parallel agreement, bound
//! admissibility, budget degradation, and proven optimality at a scale
//! the enumerators cannot touch.

#![allow(deprecated)] // the enumerators are the oracle being certified against

use coschedule::algo::exact::{best_partition, exact_perfectly_parallel};
use coschedule::algo::{branch_and_bound, BnbConfig};
use coschedule::model::{Application, Platform};
use proptest::prelude::*;
use workloads::rng::seeded_rng;
use workloads::synth::{Dataset, SeqFraction};

/// The paper's evaluation platform at a configurable LLC size; small
/// caches stress the partition decision (not everybody fits).
fn platform_with_cache(cs_mb: f64) -> Platform {
    Platform::taihulight().with_cache_size(cs_mb * 1e6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On perfectly parallel instances the branch-and-bound optimum is
    /// bit-identical (makespan, partition, and fractions) to the dominant
    /// subset enumerator — the §4 ground truth — on every platform.
    #[test]
    fn bnb_matches_pp_enumerator_bit_for_bit(
        seed in 0u64..200,
        n in 2usize..13,
        cache_idx in 0usize..5,
    ) {
        let cs_mb = [45.0f64, 80.0, 100.0, 150.0, 32_000.0][cache_idx];
        let platform = platform_with_cache(cs_mb);
        let mut rng = seeded_rng(seed);
        let apps = Dataset::Random.generate(n, SeqFraction::Zero, &mut rng);
        let reference = exact_perfectly_parallel(&apps, &platform).unwrap();
        let sol = branch_and_bound(&apps, &platform, &BnbConfig::default()).unwrap();
        prop_assert!(sol.optimal);
        prop_assert_eq!(sol.makespan.to_bits(), reference.makespan.to_bits());
        prop_assert_eq!(&sol.partition, &reference.partition);
        prop_assert_eq!(&sol.cache, &reference.cache);
    }

    /// On Amdahl instances it is bit-identical to the all-subsets
    /// reference search (`best_partition`).
    #[test]
    fn bnb_matches_amdahl_enumerator_bit_for_bit(
        seed in 0u64..100,
        n in 2usize..9,
        kind in 0usize..3,
    ) {
        let platform = platform_with_cache(120.0);
        let mut rng = seeded_rng(seed);
        let apps = Dataset::ALL[kind].generate(n, SeqFraction::paper_default(), &mut rng);
        let reference = best_partition(&apps, &platform).unwrap();
        let sol = branch_and_bound(&apps, &platform, &BnbConfig::default()).unwrap();
        prop_assert!(sol.optimal);
        prop_assert_eq!(sol.makespan.to_bits(), reference.makespan.to_bits());
        prop_assert_eq!(&sol.partition, &reference.partition);
    }

    /// The node lower bounds are admissible: no budget-unconstrained
    /// search ever returns above the enumerator optimum (it would if a
    /// bound pruned the optimal leaf), and a *proven* optimum is returned
    /// for every seed.
    #[test]
    fn completed_searches_never_miss_the_optimum(
        seed in 0u64..100,
        n in 2usize..11,
    ) {
        let platform = platform_with_cache(60.0);
        let mut rng = seeded_rng(seed ^ 0xB0B);
        let apps = Dataset::NpbSynth.generate(n, SeqFraction::Zero, &mut rng);
        let reference = exact_perfectly_parallel(&apps, &platform).unwrap();
        let sol = branch_and_bound(&apps, &platform, &BnbConfig::default()).unwrap();
        prop_assert!(sol.optimal);
        prop_assert!(sol.makespan <= reference.makespan);
        prop_assert!(sol.makespan >= reference.makespan * (1.0 - 1e-12));
    }

    /// Serial and work-stealing parallel searches return bit-identical
    /// answers across seeds and thread counts.
    #[test]
    fn serial_and_parallel_searches_agree_bit_for_bit(
        seed in 0u64..64,
        n in 2usize..13,
        threads in 2usize..7,
    ) {
        let platform = platform_with_cache(100.0);
        let mut rng = seeded_rng(seed ^ 0x5EED);
        let apps = Dataset::Random.generate(n, SeqFraction::Zero, &mut rng);
        let serial = branch_and_bound(&apps, &platform, &BnbConfig::default()).unwrap();
        let parallel = branch_and_bound(
            &apps,
            &platform,
            &BnbConfig::default().with_threads(threads).with_seed(seed),
        )
        .unwrap();
        prop_assert!(serial.optimal && parallel.optimal);
        prop_assert_eq!(serial.makespan.to_bits(), parallel.makespan.to_bits());
        prop_assert_eq!(&serial.partition, &parallel.partition);
        prop_assert_eq!(&serial.cache, &parallel.cache);
    }

    /// Budget exhaustion is graceful: any node budget returns a finite
    /// incumbent no worse than the warm start, flagged `optimal = false`
    /// whenever the proof did not finish.
    #[test]
    fn budget_exhaustion_degrades_gracefully(
        seed in 0u64..50,
        budget in 0u64..32,
    ) {
        let platform = platform_with_cache(80.0);
        let mut rng = seeded_rng(seed ^ 0xCAFE);
        let apps = Dataset::Random.generate(12, SeqFraction::Zero, &mut rng);
        let full = branch_and_bound(&apps, &platform, &BnbConfig::default()).unwrap();
        let cut = branch_and_bound(
            &apps,
            &platform,
            &BnbConfig::default().with_max_nodes(budget),
        )
        .unwrap();
        prop_assert!(cut.makespan.is_finite());
        prop_assert!(cut.makespan >= full.makespan * (1.0 - 1e-12));
        if cut.optimal {
            // A search that claims optimality must actually have it.
            prop_assert_eq!(cut.makespan.to_bits(), full.makespan.to_bits());
        }
    }
}

/// The scale the enumerators could never reach: an NPB-derived instance
/// with `n = 200` applications is solved to *proven* optimality on the
/// paper's evaluation platform within the default node budget.
#[test]
fn proves_optimality_at_n_200() {
    let profiles = [
        ("CG", 0.535, 6.59e-4),
        ("BT", 0.829, 7.31e-3),
        ("LU", 0.750, 1.51e-3),
        ("SP", 0.762, 1.51e-2),
        ("MG", 0.540, 2.62e-2),
        ("FT", 0.582, 1.78e-2),
    ];
    let mut rng = seeded_rng(7);
    use rand::RngExt as _;
    let apps: Vec<Application> = (0..200)
        .map(|i| {
            let (name, f, m) = profiles[i % 6];
            let work = rng.random_range(1e8..=1e12);
            Application::perfectly_parallel(format!("{name}-{i}"), work, f, m)
        })
        .collect();
    let platform = Platform::taihulight();
    let sol = branch_and_bound(&apps, &platform, &BnbConfig::default()).unwrap();
    assert!(sol.optimal, "default budget must close n = 200");
    assert!(
        sol.stats.nodes_expanded < 10_000,
        "Theorem-3 + relaxed bounds should prove n = 200 in few nodes, took {}",
        sol.stats.nodes_expanded
    );
    let parallel =
        branch_and_bound(&apps, &platform, &BnbConfig::default().with_threads(4)).unwrap();
    assert_eq!(sol.makespan.to_bits(), parallel.makespan.to_bits());
    assert_eq!(sol.partition, parallel.partition);
}
