//! Golden makespans for every registered solver on the NPB-6 workload.
//!
//! The bit patterns below were captured from the scalar evaluation path
//! **before** the struct-of-arrays eval engine landed; the migrated
//! solvers must reproduce them exactly. Any future change that perturbs a
//! makespan — even in the last ulp — must either restore bit-identity or
//! consciously re-capture these constants and document why the iteration
//! order legitimately changed.

use coschedule::model::Platform;
use coschedule::solver::{self, Instance, SolveCtx};
use workloads::npb::npb6;

/// `(solver name, makespan bits)` on NPB-6 (`s = 0.05`), TaihuLight
/// platform, `SolveCtx::seeded(42)`.
const GOLDEN: [(&str, u64); 11] = [
    ("DominantRandom", 0x42089c354d58e432), // 1.32124942511114235e10
    ("DominantMinRatio", 0x42089c354d58e432), // 1.32124942511114235e10
    ("DominantMaxRatio", 0x42089c354d58e432), // 1.32124942511114235e10
    ("DominantRevRandom", 0x42089c354d58e432), // 1.32124942511114235e10
    ("DominantRevMinRatio", 0x42089c354d58e432), // 1.32124942511114235e10
    ("DominantRevMaxRatio", 0x42089c354d58e432), // 1.32124942511114235e10
    ("RandomPart", 0x4214db925d4962da),     // 2.23957870903465347e10
    ("Fair", 0x421021cd47395274),           // 1.73216444943305206e10
    ("0cache", 0x42152d090649beaa),         // 2.27374698424361954e10
    ("AllProcCache", 0x42208678c734485a),   // 3.54877694981413116e10
    ("DominantRefined", 0x42089ba6c3bb50ee), // 1.32113265834145164e10
];

fn instance() -> Instance {
    Instance::new(npb6(&[0.05]), Platform::taihulight()).unwrap()
}

#[test]
fn every_registered_solver_reproduces_its_pre_migration_makespan() {
    let inst = instance();
    let solvers = solver::all();
    assert_eq!(solvers.len(), GOLDEN.len(), "registry changed size");
    for (s, &(name, bits)) in solvers.iter().zip(&GOLDEN) {
        assert_eq!(s.name(), name, "registry order changed");
        let outcome = s.solve(&inst, &mut SolveCtx::seeded(42)).unwrap();
        let golden = f64::from_bits(bits);
        assert_eq!(
            outcome.makespan.to_bits(),
            bits,
            "{name}: got {:.17e}, golden {golden:.17e} (Δrel {:.3e})",
            outcome.makespan,
            (outcome.makespan - golden).abs() / golden
        );
    }
}

#[test]
fn golden_solves_are_stable_across_repeat_and_scratch_reuse() {
    // The same context solving twice in a row (warm recycled buffers) must
    // still hit the golden values — buffer reuse cannot leak state.
    let inst = instance();
    let mut ctx = SolveCtx::seeded(42);
    for &(name, bits) in &GOLDEN {
        let s = solver::by_name(name).unwrap();
        if s.is_randomized() {
            // Randomized solvers consume the ctx stream; give them the
            // golden stream position instead.
            let o = s.solve(&inst, &mut SolveCtx::seeded(42)).unwrap();
            assert_eq!(o.makespan.to_bits(), bits, "{name}");
            continue;
        }
        let first = s.solve(&inst, &mut ctx).unwrap();
        let second = s.solve(&inst, &mut ctx).unwrap();
        assert_eq!(first.makespan.to_bits(), bits, "{name} (cold)");
        assert_eq!(second.makespan.to_bits(), bits, "{name} (warm)");
        assert_eq!(first.eval_stats, second.eval_stats, "{name} stats");
    }
}
