//! Integration tests of the NP-completeness machinery on larger instances
//! than the unit tests, cross-checking the two Knapsack solvers and the
//! Theorem-1 reduction.

use coschedule::npc::{knapsack_to_coschedcache, Knapsack};
use rand::RngExt as _;
use workloads::rng::seeded_rng;

fn random_knapsack(seed: u64, n: usize, max_size: u64, max_value: u64) -> Knapsack {
    let mut rng = seeded_rng(seed);
    let sizes: Vec<u64> = (0..n).map(|_| rng.random_range(1..=max_size)).collect();
    let values: Vec<u64> = (0..n).map(|_| rng.random_range(1..=max_value)).collect();
    let capacity = rng.random_range(1..=sizes.iter().sum::<u64>());
    let target = rng.random_range(1..=values.iter().sum::<u64>());
    Knapsack::new(sizes, values, capacity, target)
}

#[test]
fn solvers_agree_on_many_random_instances() {
    for seed in 0..60 {
        let kp = random_knapsack(seed, 12, 30, 100);
        assert_eq!(
            kp.solve_dp().value,
            kp.solve_bb().value,
            "seed {seed}: {kp:?}"
        );
    }
}

#[test]
fn reduction_equivalence_on_random_instances() {
    // Keep U small so the brute-force decision stays fast; n up to 10.
    for seed in 0..30 {
        let kp = random_knapsack(1000 + seed, 8, 6, 20);
        let inst = knapsack_to_coschedcache(&kp, 0.5);
        assert_eq!(
            inst.decide_bruteforce().is_some(),
            kp.is_feasible(),
            "seed {seed}: reduction broke equivalence for {kp:?}"
        );
    }
}

#[test]
fn reduction_instance_is_well_formed() {
    let kp = Knapsack::new(vec![3, 1, 4, 2], vec![5, 9, 2, 6], 7, 14);
    let inst = knapsack_to_coschedcache(&kp, 0.5);
    // The constructed applications pass model validation.
    for (i, app) in inst.apps.iter().enumerate() {
        app.validate(i).unwrap_or_else(|e| panic!("app {i}: {e}"));
        assert!(app.is_perfectly_parallel());
        assert!(app.footprint.is_finite());
    }
    inst.platform.validate().unwrap();
    assert!(inst.bound.is_finite() && inst.bound > 0.0);
    // Proof constants: 0 < epsilon << 1, 0 < eta < 1.
    assert!(inst.epsilon > 0.0 && inst.epsilon < 0.01);
    assert!(inst.eta > 0.0 && inst.eta < 1.0);
}

#[test]
fn tightening_the_target_flips_the_decision() {
    let kp = Knapsack::new(vec![2, 3, 4], vec![4, 5, 6], 5, 1);
    // Optimum within capacity 5 is value 9 ({2,3} -> 4+5).
    let best = kp.solve_dp().value;
    assert_eq!(best, 9);
    let feasible = Knapsack::new(kp.sizes.clone(), kp.values.clone(), 5, best);
    let infeasible = Knapsack::new(kp.sizes.clone(), kp.values.clone(), 5, best + 1);
    assert!(knapsack_to_coschedcache(&feasible, 0.5)
        .decide_bruteforce()
        .is_some());
    assert!(knapsack_to_coschedcache(&infeasible, 0.5)
        .decide_bruteforce()
        .is_none());
}
