//! Crash/recover identity: a server killed mid-trace and restarted with
//! `--restore` must answer the remainder of the trace **byte-identically**
//! to a server that never crashed — at every cut point, through snapshot
//! rotations, at any worker count, and across a warm-standby promotion.
//!
//! The process-level version of this (a real `kill -9` of a loaded
//! 4-worker server) is `cosched serve --smoke-recover`; these tests pin
//! the same contract at the library and socket layers, where every cut
//! point is cheap to sweep.

mod common;

use common::{create_request, shutdown, spawn_server_with, subtrace};
use experiments::serve::wal::recover_shard;
use experiments::serve::{
    build_states, client_exchange, handle_line, Durability, ServeConfig, Server, Standby,
};
use minijson::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cosched-recover-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A mutation-heavy trace over two instances, ending with `"auto"` solves
/// so recovery must also reproduce the tuner's learned state.
fn trace() -> Vec<String> {
    let mut lines = vec![create_request(0)];
    lines.extend(subtrace(0, 0));
    lines.push(create_request(1));
    for seed in 0..4u64 {
        lines.push(format!(
            r#"{{"op":"solve","id":{id},"solver":"auto","seed":{seed},"schedule":false}}"#,
            id = seed % 2,
        ));
    }
    lines
}

/// Runs `lines` through a single durable shard (committing after every
/// request, as the transports do), "crashing" by dropping the state after
/// `cut` requests, recovering from disk, and serving the remainder.
fn crashed_run(lines: &[String], cut: usize, dir: &Path, snapshot_every: u64) -> Vec<String> {
    let mut config = ServeConfig {
        durability: Durability::Log,
        wal_dir: Some(dir.to_path_buf()),
        snapshot_every,
        ..ServeConfig::default()
    };
    let mut state = build_states(&mut config).expect("durable state").remove(0);
    let mut responses = Vec::new();
    for line in &lines[..cut] {
        responses.push(handle_line(&mut state, line));
        state.wal_commit();
        state.wal_maybe_snapshot();
    }
    drop(state); // the crash: no rotation, no clean shutdown

    // `recover_shard` is also reachable directly (what `Standby` uses);
    // the serve defaults passed here must match the crashed server's.
    recover_shard(dir, 0, 1, "DominantMinRatio", 0xC05).expect("recover");
    let mut config = ServeConfig {
        durability: Durability::Log,
        wal_dir: Some(dir.to_path_buf()),
        restore: true,
        snapshot_every,
        ..ServeConfig::default()
    };
    let mut state = build_states(&mut config).expect("restored state").remove(0);
    for line in &lines[cut..] {
        responses.push(handle_line(&mut state, line));
        state.wal_commit();
        state.wal_maybe_snapshot();
    }
    responses
}

#[test]
fn every_cut_point_recovers_byte_identically() {
    let lines = trace();
    // The uninterrupted reference: the same requests, no durability.
    let mut reference_state = build_states(&mut ServeConfig::default()).unwrap().remove(0);
    let reference: Vec<String> = lines
        .iter()
        .map(|l| handle_line(&mut reference_state, l))
        .collect();

    for cut in 0..=lines.len() {
        let dir = scratch_dir("cut");
        let responses = crashed_run(&lines, cut, &dir, 1 << 32);
        assert_eq!(
            responses, reference,
            "crash after request {cut} changed a response"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn recovery_composes_with_snapshot_rotation() {
    // `snapshot_every = 3`: several rotations happen mid-trace, so the
    // crash lands in every rotation phase as the cut point sweeps.
    let lines = trace();
    let mut reference_state = build_states(&mut ServeConfig::default()).unwrap().remove(0);
    let reference: Vec<String> = lines
        .iter()
        .map(|l| handle_line(&mut reference_state, l))
        .collect();

    for cut in [0, 2, 3, 4, 7, 11, lines.len()] {
        let dir = scratch_dir("rot");
        let responses = crashed_run(&lines, cut, &dir, 3);
        assert_eq!(
            responses, reference,
            "crash after request {cut} with rotation changed a response"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sharded_restore_over_sockets_is_byte_identical_and_adopts_the_layout() {
    let dir = scratch_dir("shard");
    let mut full: Vec<String> = (0..4).map(create_request).collect();
    for k in 0..4u64 {
        full.extend(subtrace(k as usize, k));
    }
    full.push(r#"{"op":"stats"}"#.into());
    full.push(r#"{"op":"list"}"#.into());
    let split = full.len() / 2;

    // Reference: one uninterrupted 4-worker server, no durability.
    let (addr, server) = spawn_server_with(|c| c.workers = 4);
    let reference = client_exchange(addr, &full).expect("reference run");
    shutdown(addr, server);

    // Durable run, part 1, then a restart with `--restore`. The restart
    // asks for 1 worker: the directory's meta.json must override it back
    // to 4 (shard files only compose at the layout they were written with).
    let wal_dir = dir.clone();
    let (addr, server) = spawn_server_with(move |c| {
        c.workers = 4;
        c.durability = Durability::Log;
        c.wal_dir = Some(wal_dir);
    });
    let part1 = client_exchange(addr, &full[..split]).expect("part 1");
    shutdown(addr, server);

    let wal_dir = dir.clone();
    let (addr, server) = spawn_server_with(move |c| {
        c.workers = 1;
        c.restore = true;
        c.durability = Durability::Log;
        c.wal_dir = Some(wal_dir);
    });
    let part2 = client_exchange(addr, &full[split..]).expect("part 2");
    let metrics = client_exchange(addr, &[r#"{"op":"metrics"}"#.to_string()]).expect("metrics");
    shutdown(addr, server);

    let mut rejoined = part1;
    rejoined.extend(part2);
    assert_eq!(rejoined, reference, "restore diverged from the reference");

    // meta.json won: the restarted server serves 4 shards, each reporting
    // its WAL generation.
    let m = Json::parse(&metrics[0]).unwrap();
    assert_eq!(m.get("workers").and_then(Json::as_u64), Some(4), "{m}");
    let shards = m.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(shards.len(), 4);
    for shard in shards {
        assert!(
            shard.get("wal_records").is_some(),
            "durability is on after restore: {shard}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn promoted_standby_serves_the_remainder_byte_identically() {
    let dir = scratch_dir("standby");
    let mut full: Vec<String> = (0..2).map(create_request).collect();
    for k in 0..2u64 {
        full.extend(subtrace(k as usize, k));
    }
    let split = full.len() / 2;

    let (addr, server) = spawn_server_with(|c| c.workers = 2);
    let reference = client_exchange(addr, &full).expect("reference run");
    shutdown(addr, server);

    let wal_dir = dir.clone();
    let (addr, server) = spawn_server_with(move |c| {
        c.workers = 2;
        c.durability = Durability::Log;
        c.wal_dir = Some(wal_dir);
    });
    let part1 = client_exchange(addr, &full[..split]).expect("part 1");
    shutdown(addr, server);

    // The warm replica tails the directory, then takes over serving.
    let mut standby = Standby::open(&dir, "DominantMinRatio", 0xC05).expect("open standby");
    standby.catch_up().expect("catch up");
    assert_eq!(standby.workers(), 2);
    assert_eq!(standby.instances(), 2);

    let mut promoted = Server::bind("127.0.0.1:0").expect("bind");
    promoted.config_mut().allow_shutdown = true;
    let addr = promoted.local_addr().unwrap();
    let states = standby.promote();
    let handle = std::thread::spawn(move || promoted.run_with_states(states));
    let part2 = client_exchange(addr, &full[split..]).expect("part 2 on the standby");
    client_exchange(addr, &[r#"{"op":"shutdown"}"#.to_string()]).expect("shutdown");
    handle.join().expect("standby thread").expect("standby run");

    let mut rejoined = part1;
    rejoined.extend(part2);
    assert_eq!(
        rejoined, reference,
        "the promoted standby diverged from the reference"
    );
    std::fs::remove_dir_all(&dir).ok();
}
