//! Reproducibility across the whole stack: identical seeds must produce
//! bit-identical datasets, schedules, experiment data and simulations.

use coschedule::algo::Strategy;
use coschedule::model::Platform;
use coschedule::solver::{self, solve_batch, BatchSpec, Instance, SolveCtx, Solver};
use cosim::{CoSimConfig, CoSimulator};
use experiments::ExpConfig;
use workloads::rng::seeded_rng;
use workloads::synth::{Dataset, SeqFraction};

#[test]
fn datasets_are_reproducible() {
    for ds in Dataset::ALL {
        let a = ds.generate(32, SeqFraction::paper_default(), &mut seeded_rng(11));
        let b = ds.generate(32, SeqFraction::paper_default(), &mut seeded_rng(11));
        assert_eq!(a, b, "{}", ds.name());
    }
}

#[test]
fn strategies_are_reproducible_under_seed() {
    let platform = Platform::taihulight();
    let apps = Dataset::Random.generate(16, SeqFraction::paper_default(), &mut seeded_rng(3));
    let inst = Instance::new(apps, platform).unwrap();
    let mut all = Strategy::all_coscheduling();
    all.push(Strategy::AllProcCache);
    for s in all {
        let a = s.solve(&inst, &mut SolveCtx::seeded(9)).unwrap();
        let b = s.solve(&inst, &mut SolveCtx::seeded(9)).unwrap();
        assert_eq!(a, b, "{}", s.name());
    }
}

#[test]
fn batch_scratch_reuse_keeps_serial_and_parallel_bit_identical() {
    // solve_batch recycles one EvalScratch per worker across instances;
    // whether a worker handles one repetition (8 threads) or all of them
    // (serial), and no matter which repetitions share a warm scratch, the
    // outcomes — makespans, schedules, partitions AND eval_stats — must be
    // bit-identical.
    let platform = Platform::taihulight();
    let source = |rep: usize, rng: &mut rand::rngs::StdRng| {
        let n = 6 + rep % 3;
        Instance::new(
            Dataset::NpbSynth.generate(n, SeqFraction::paper_default(), rng),
            platform.clone(),
        )
    };
    let solvers = solver::all();
    let refs: Vec<&dyn Solver> = solvers.iter().map(|s| s.as_ref() as &dyn Solver).collect();
    let serial = solve_batch(&source, &refs, &BatchSpec::new(8, 77)).unwrap();
    for threads in [2, 4, 8] {
        let parallel =
            solve_batch(&source, &refs, &BatchSpec::new(8, 77).with_threads(threads)).unwrap();
        assert_eq!(serial, parallel, "{threads} threads diverged from serial");
    }
    // Eval work is itself deterministic and non-trivial.
    for row in &serial {
        for (o, s) in row.iter().zip(&solvers) {
            assert!(
                o.eval_stats.kernel_calls > 0,
                "{} did no eval work",
                s.name()
            );
        }
    }
}

#[test]
fn experiments_are_reproducible() {
    let cfg = ExpConfig::smoke();
    for id in ["fig1", "fig4", "fig18"] {
        let e = experiments::registry::find(id).unwrap();
        let a = (e.run)(&cfg);
        let b = (e.run)(&cfg);
        assert_eq!(a, b, "{id}");
    }
}

#[test]
fn simulator_is_reproducible() {
    let platform = Platform {
        processors: 8.0,
        cache_size: 320e6,
        ref_cache_size: 40e6,
        latency_cache: 0.17,
        latency_mem: 1.0,
        alpha: 0.5,
    };
    // Small, fixed work values: the simulator executes ops one by one, so
    // RANDOM-dataset magnitudes (up to 1e12) would take hours.
    let mut apps = Dataset::Random.generate(3, SeqFraction::Zero, &mut seeded_rng(4));
    for (i, app) in apps.iter_mut().enumerate() {
        app.work = 2e6 + 1e6 * i as f64;
    }
    let outcome = Strategy::Fair
        .solve(
            &Instance::new(apps.clone(), platform.clone()).unwrap(),
            &mut SolveCtx::seeded(0),
        )
        .unwrap();
    let run = || {
        CoSimulator::new(
            &apps,
            &platform,
            &outcome.schedule,
            CoSimConfig {
                work_scale: 1e-2,
                ..CoSimConfig::default()
            },
        )
        .run()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_root_seeds_change_experiment_data() {
    let a = (experiments::registry::find("fig1").unwrap().run)(&ExpConfig::smoke());
    let mut cfg2 = ExpConfig::smoke();
    cfg2.seed ^= 0xDEAD_BEEF;
    let b = (experiments::registry::find("fig1").unwrap().run)(&cfg2);
    assert_ne!(a, b);
}
