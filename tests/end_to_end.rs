//! End-to-end integration: dataset generation → scheduling → schedule
//! feasibility → discrete co-execution validation, across all crates.

use coschedule::algo::{BuildOrder, Choice, Strategy};
use coschedule::model::{Application, Platform};
use coschedule::solver::{Instance, SolveCtx, Solver as _};
use cosim::{validate_schedule, CoSimConfig};
use workloads::rng::seeded_rng;
use workloads::synth::{Dataset, SeqFraction};

#[test]
fn full_pipeline_on_every_dataset() {
    let platform = Platform::taihulight();
    for dataset in Dataset::ALL {
        let mut rng = seeded_rng(1);
        let apps = dataset.generate(12, SeqFraction::paper_default(), &mut rng);
        let inst = Instance::new(apps.clone(), platform.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", dataset.name()));
        let mut strategies = Strategy::all_coscheduling();
        strategies.push(Strategy::AllProcCache);
        for s in strategies {
            let o = s
                .solve(&inst, &mut SolveCtx::seeded(1))
                .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), dataset.name()));
            if o.concurrent {
                o.schedule.validate(&apps, &platform).unwrap();
            }
            assert!(o.makespan.is_finite() && o.makespan > 0.0);
        }
    }
}

#[test]
fn heuristic_schedule_survives_discrete_simulation() {
    // Perfectly parallel instance in a regime where misses matter, so the
    // cosim run is meaningful.
    let platform = Platform {
        processors: 16.0,
        cache_size: 640e6,
        ref_cache_size: 40e6,
        latency_cache: 0.17,
        latency_mem: 1.0,
        alpha: 0.5,
    };
    let apps: Vec<Application> = (0..4)
        .map(|i| {
            Application::perfectly_parallel(
                format!("T{i}"),
                3e6 + 1e6 * i as f64,
                0.5 + 0.1 * i as f64,
                0.15 + 0.08 * i as f64,
            )
        })
        .collect();
    let outcome = Strategy::dominant(BuildOrder::Forward, Choice::MinRatio)
        .solve(
            &Instance::new(apps.clone(), platform.clone()).unwrap(),
            &mut SolveCtx::seeded(5),
        )
        .unwrap();
    let report = validate_schedule(
        &apps,
        &platform,
        &outcome.schedule,
        CoSimConfig {
            work_scale: 2e-2,
            ..CoSimConfig::default()
        },
    );
    assert!(
        report.relative_error < 0.15,
        "analytic model mispredicts the simulation by {:.1}%",
        report.relative_error * 100.0
    );
}

#[test]
fn dominant_min_ratio_wins_across_seeds_and_datasets() {
    // The paper's headline: DMR is never worse than the baselines.
    let platform = Platform::taihulight();
    for dataset in Dataset::ALL {
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let apps = dataset.generate(16, SeqFraction::paper_default(), &mut rng);
            let inst = Instance::new(apps, platform.clone()).unwrap();
            let dmr = Strategy::dominant(BuildOrder::Forward, Choice::MinRatio)
                .solve(&inst, &mut SolveCtx::seeded(seed + 100))
                .unwrap()
                .makespan;
            for baseline in [Strategy::Fair, Strategy::ZeroCache] {
                let b = baseline
                    .solve(&inst, &mut SolveCtx::seeded(seed + 100))
                    .unwrap()
                    .makespan;
                assert!(
                    dmr <= b * (1.0 + 1e-9),
                    "{}(seed {seed}, {}): DMR {dmr} vs {b}",
                    baseline.name(),
                    dataset.name()
                );
            }
        }
    }
}

#[test]
fn umbrella_crate_reexports_work() {
    // The root library exposes all the member crates.
    let platform = cache_coschedule::coschedule::model::Platform::taihulight();
    assert_eq!(platform.processors, 256.0);
    let table = cache_coschedule::workloads::npb::NPB_TABLE;
    assert_eq!(table.len(), 6);
}
