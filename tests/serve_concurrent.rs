//! The sharded server's identity contract under real concurrency:
//! several client threads issue interleaved create/mutate/solve traffic
//! on distinct instances against a `--workers 4` server, and every
//! client's per-instance response stream must be **byte-identical** to a
//! single-worker replay of the same per-instance subtrace.
//!
//! Why this holds: instances pin to their owning shard, each shard is one
//! single-threaded `Session` (so per-instance request order is preserved
//! end to end), and incremental re-solves are bit-identical to cold
//! solves — so whatever the cross-client interleaving, each instance's
//! responses are a pure function of its own subtrace.

mod common;

use common::{create_request, shutdown, spawn_server, spawn_server_with, subtrace};
use experiments::serve::{
    client_exchange, client_exchange_framed, pipelined_exchange_framed, FrameMode, ReactorMode,
};
use minijson::Json;

#[test]
fn concurrent_clients_match_a_single_worker_replay_byte_for_byte() {
    const CLIENTS: usize = 6;
    let (addr, server) = spawn_server(4);

    // Phase 1 — live: one thread per client; each creates its instance
    // (lock-step, to learn the id), then runs its subtrace — even clients
    // pipelined (many requests in flight on one connection), odd clients
    // lock-step; clients 0, 3, and 4 additionally negotiate the binary
    // frame codec, so framed and line-JSON connections interleave on the
    // same shards (the phase-2 replay is plain JSON, so the framed
    // responses must decode to the exact reference bytes).
    let mut clients: Vec<(u64, Vec<String>, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                scope.spawn(move || {
                    let create = create_request(k);
                    let created =
                        client_exchange(addr, std::slice::from_ref(&create)).expect("create");
                    let v = Json::parse(&created[0]).expect("create response");
                    assert_eq!(
                        v.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "{created:?}"
                    );
                    let id = v.get("id").and_then(Json::as_u64).expect("created id");
                    let trace = subtrace(k, id);
                    let frame = if k % 4 == 0 || k % 4 == 3 {
                        FrameMode::Binary
                    } else {
                        FrameMode::Json
                    };
                    let responses = if k % 2 == 0 {
                        pipelined_exchange_framed(addr, &trace, frame).expect("pipelined subtrace")
                    } else {
                        client_exchange_framed(addr, &trace, frame).expect("lock-step subtrace")
                    };
                    let mut requests = vec![create];
                    requests.extend(trace);
                    let mut all = created;
                    all.extend(responses);
                    (id, requests, all)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Distinct ids 0..CLIENTS were handed out (round-robin creates with
    // strided per-shard sessions reproduce the single-worker sequence).
    let mut ids: Vec<u64> = clients.iter().map(|(id, _, _)| *id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..CLIENTS as u64).collect::<Vec<_>>());

    // The post-traffic global view, for comparison after the replay.
    let globals = vec![
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"list"}"#.to_string(),
    ];
    let live_globals = client_exchange(addr, &globals).expect("stats+list");
    shutdown(addr, server);

    // Phase 2 — replay: one single-worker server, the same per-instance
    // subtraces, clients ordered by their live id so the creates hand out
    // the same ids. Every response line must match the live run exactly.
    clients.sort_by_key(|(id, _, _)| *id);
    let (addr, server) = spawn_server(1);
    for (id, requests, live_responses) in &clients {
        let replayed = client_exchange(addr, requests).expect("replay");
        assert_eq!(
            &replayed, live_responses,
            "instance {id}: single-worker replay diverged from the sharded live run"
        );
    }
    // Totals are conserved too: the merged stats/list of the sharded
    // server equal the single worker's, byte for byte.
    let replay_globals = client_exchange(addr, &globals).expect("stats+list");
    assert_eq!(replay_globals, live_globals);
    shutdown(addr, server);
}

#[test]
fn sharded_shutdown_completes_while_other_connections_sit_idle() {
    // Regression: `run_sharded` joins every connection thread; an idle
    // client parked in a TCP read must not stall the shutdown — the
    // server shuts the socket down to unblock its reader.
    let (addr, server) = spawn_server(2);
    let idle = std::net::TcpStream::connect(addr).expect("idle connect");
    client_exchange(addr, &[r#"{"op":"shutdown"}"#.to_string()]).expect("shutdown");
    server
        .join()
        .expect("server must exit despite the idle client")
        .expect("server run result");
    drop(idle);
}

#[test]
fn lock_step_trace_with_closes_is_identical_at_any_worker_count() {
    // One connection, lock-step, exercising the cross-shard directory:
    // eight instances dealt round-robin, closes, a re-create (ids are
    // never reused), global stats/list, and dead-id errors. Everything —
    // including the error payloads — must be byte-identical between the
    // sharded and the single-worker server.
    let mut trace: Vec<String> = (0..8).map(create_request).collect();
    for id in [2u64, 5] {
        trace.push(format!(r#"{{"op":"close","id":{id}}}"#));
    }
    trace.push(create_request(8)); // must get id 8, not recycle 2
    for id in [0u64, 3, 8] {
        trace.push(format!(
            r#"{{"op":"solve","id":{id},"solver":"DominantMinRatio","seed":9}}"#
        ));
    }
    trace.push(r#"{"op":"solve","id":2,"seed":9}"#.into()); // closed: error
    trace.push(r#"{"op":"list"}"#.into());
    trace.push(r#"{"op":"stats"}"#.into());
    trace.push(r#"{"op":"solvers"}"#.into());

    let mut by_workers = Vec::new();
    for workers in [1usize, 4] {
        let (addr, server) = spawn_server(workers);
        let responses = client_exchange(addr, &trace).expect("trace");
        shutdown(addr, server);
        by_workers.push(responses);
    }
    assert_eq!(
        by_workers[0], by_workers[1],
        "workers=4 diverged from workers=1"
    );
    let responses = &by_workers[0];
    // Sanity on the shape: the re-create got a fresh id…
    let recreated = Json::parse(&responses[10]).unwrap();
    assert_eq!(recreated.get("id").and_then(Json::as_u64), Some(8));
    // …the closed id errors with the id echoed…
    let dead = Json::parse(&responses[14]).unwrap();
    assert_eq!(dead.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(dead.get("id").and_then(Json::as_u64), Some(2));
    // …and the list holds exactly the seven live instances.
    let list = Json::parse(&responses[15]).unwrap();
    let infos = list.get("instances").and_then(Json::as_array).unwrap();
    let listed: Vec<u64> = infos
        .iter()
        .map(|i| i.get("id").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(listed, vec![0, 1, 3, 4, 6, 7, 8]);
}

#[test]
fn reactor_and_threaded_front_ends_serve_identical_bytes() {
    // The explicit front-end pin: the same lock-step trace against the
    // sequential server, the thread-per-connection front-end
    // (`--reactor off`), and the epoll reactor (`--reactor on`) must be
    // answered with the same bytes (metrics exempt as always — the
    // reactor adds net columns and the fronts shard differently).
    let mut trace: Vec<String> = (0..4).map(create_request).collect();
    for id in [0u64, 2, 3] {
        trace.push(format!(
            r#"{{"op":"solve","id":{id},"solver":"DominantRefined","seed":11}}"#
        ));
    }
    trace.push(r#"{"op":"close","id":1}"#.into());
    trace.push(r#"{"op":"list"}"#.into());
    trace.push(r#"{"op":"stats"}"#.into());

    let run = |workers: usize, reactor: ReactorMode| -> Vec<String> {
        let (addr, server) = spawn_server_with(|config| {
            config.workers = workers;
            config.reactor = reactor;
        });
        let responses = client_exchange(addr, &trace).expect("trace");
        shutdown(addr, server);
        responses
    };
    let sequential = run(1, ReactorMode::Auto);
    let threaded = run(4, ReactorMode::Off);
    let reactor = run(4, ReactorMode::On);
    assert_eq!(
        sequential, threaded,
        "threaded front-end diverged from the sequential server"
    );
    assert_eq!(
        sequential, reactor,
        "reactor front-end diverged from the sequential server"
    );
}
