//! Shared support for the serve integration tests: loopback servers and
//! the perturbed-NPB trace generators used by the concurrency, loopback,
//! and recovery suites.

// Each integration test binary compiles its own copy and uses a subset.
#![allow(dead_code)]

use experiments::serve::{app_to_json, client_exchange, ServeConfig, Server};
use minijson::Json;
use std::net::SocketAddr;
use std::thread::JoinHandle;

/// The server thread's handle; [`shutdown`] joins it and asserts a clean
/// exit.
pub type ServerHandle = JoinHandle<std::io::Result<()>>;

/// Binds `127.0.0.1:0` with `allow_shutdown`, applies `configure` to the
/// [`ServeConfig`] (worker count, durability, …), and serves on a thread.
pub fn spawn_server_with(configure: impl FnOnce(&mut ServeConfig)) -> (SocketAddr, ServerHandle) {
    let mut server = Server::bind("127.0.0.1:0").expect("bind 127.0.0.1:0");
    server.config_mut().allow_shutdown = true;
    configure(server.config_mut());
    let addr = server.local_addr().expect("bound listener has an address");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// [`spawn_server_with`] setting only the worker count.
pub fn spawn_server(workers: usize) -> (SocketAddr, ServerHandle) {
    spawn_server_with(|config| config.workers = workers)
}

/// Sends `shutdown` and joins the server thread, asserting it exits
/// cleanly.
pub fn shutdown(addr: SocketAddr, handle: ServerHandle) {
    client_exchange(addr, &[r#"{"op":"shutdown"}"#.to_string()]).expect("shutdown");
    handle.join().expect("server thread").expect("server run");
}

/// Runs `script` lock-step against a fresh `workers`-shard server and
/// returns the response lines. The script must end with `shutdown` (the
/// server thread is joined).
pub fn run_script(workers: usize, script: &[String]) -> Vec<String> {
    let (addr, handle) = spawn_server(workers);
    let responses = client_exchange(addr, script).expect("loopback exchange");
    handle
        .join()
        .expect("server thread")
        .expect("server run result");
    responses
}

/// Canonicalizes a response line for run-to-run comparisons by zeroing
/// the timing-dependent fields of the `metrics` response:
/// `reactor_wakeups` on each shard row counts `epoll_wait` returns, and
/// readiness batching legitimately differs between two otherwise
/// identical runs; the `latency_p*_ns` percentiles (per shard and
/// merged) are wall-clock measurements. `latency_count` is *not*
/// masked — for a lock-step script it must match the deterministic
/// request count. Every other byte must still match.
pub fn mask_reactor_wakeups(response: &str) -> String {
    let Ok(mut v) = Json::parse(response) else {
        return response.to_string();
    };
    let mask_latency = |row: &mut Json| {
        for key in ["latency_p50_ns", "latency_p95_ns", "latency_p99_ns"] {
            if let Some(field) = get_mut(row, key) {
                *field = Json::from(0u64);
            }
        }
    };
    mask_latency(&mut v);
    let Some(Json::Arr(shards)) = get_mut(&mut v, "shards") else {
        return response.to_string();
    };
    for row in shards {
        if let Some(wakeups) = get_mut(row, "reactor_wakeups") {
            *wakeups = Json::from(0u64);
        }
        mask_latency(row);
    }
    v.to_string()
}

fn get_mut<'a>(v: &'a mut Json, key: &str) -> Option<&'a mut Json> {
    match v {
        Json::Obj(pairs) => pairs
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, value)| value),
        _ => None,
    }
}

/// Client `k`'s create request: NPB-6 with the work vector perturbed per
/// client, so the instances (and their makespans) are all distinct.
pub fn create_request(k: usize) -> String {
    let mut apps = workloads::npb::npb6(&[0.05]);
    for app in &mut apps {
        app.work *= 1.0 + 0.01 * k as f64;
    }
    Json::obj([
        ("op", Json::from("create")),
        ("apps", Json::arr(apps.iter().map(app_to_json))),
    ])
    .to_string()
}

/// Client `k`'s post-create subtrace against its own instance `id`:
/// update/add/remove mutations interleaved with solves (different
/// solvers and seeds per client, memo and error cases included).
pub fn subtrace(k: usize, id: u64) -> Vec<String> {
    let solvers = [
        "DominantMinRatio",
        "DominantRefined",
        "Fair",
        "RandomPart",
        "DominantRevMaxRatio",
        "AllProcCache",
    ];
    let solver = solvers[k % solvers.len()];
    let mut lines = Vec::new();
    for round in 0..3u64 {
        // A real profile change every round (never a memoizable repeat).
        lines.push(format!(
            r#"{{"op":"update_app","id":{id},"index":{index},"app":{{"name":"W{k}r{round}","work":{work},"seq_fraction":0.04,"access_freq":0.61,"miss_rate_ref":4.2e-3}}}}"#,
            index = round % 3,
            work = 3.1e10 * (1.0 + 0.003 * (k as f64 + 1.0) * (round as f64 + 1.0)),
        ));
        lines.push(format!(
            r#"{{"op":"solve","id":{id},"solver":"{solver}","seed":{seed},"schedule":{schedule}}}"#,
            seed = 40 + round,
            schedule = round % 2 == 0,
        ));
    }
    lines.push(format!(
        r#"{{"op":"mutate","id":{id},"action":"add_app","app":{{"name":"late{k}","work":2.2e10,"seq_fraction":0.03,"access_freq":0.55,"miss_rate_ref":1.3e-3}}}}"#
    ));
    // An error mid-trace: out-of-range index (the response echoes the id
    // and must replay identically).
    lines.push(format!(r#"{{"op":"remove_app","id":{id},"index":99}}"#));
    lines.push(format!(r#"{{"op":"remove_app","id":{id},"index":1}}"#));
    lines.push(format!(
        r#"{{"op":"solve","id":{id},"solver":"{solver}","seed":77}}"#
    ));
    // Same revision, solver, seed: the memo tier must answer.
    lines.push(format!(
        r#"{{"op":"solve","id":{id},"solver":"{solver}","seed":77}}"#
    ));
    lines
}
