//! Observability integration tests: the log2-ns latency-histogram math
//! (bucket boundaries, exact cross-shard merge, cumulative conversion)
//! checked property-style against naive references, the Prometheus text
//! exposition's shape, the `trace` protocol op, the `trace_id` echo, the
//! histogram's continuity across a WAL restore, and — the golden
//! guarantee — that **enabling tracing does not perturb results**: with
//! span recording on, the smoke script still answers byte-identically
//! across worker counts.

mod common;

use common::{mask_reactor_wakeups, spawn_server_with};
use coschedule::obs;
use coschedule::session::Session;
use experiments::serve::metrics::{prometheus_body, LatencyHistogram, PromShard};
use experiments::serve::wal::{recover_shard, WalWriter};
use experiments::serve::{client_exchange, handle_line, smoke_script, Durability, ServeState};
use minijson::Json;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that flip the process-global tracing flag (and
/// drain the process-global ring registry).
static OBS_GATE: Mutex<()> = Mutex::new(());

/// `upper_bound` re-derived: the largest nanosecond reading bucket `b`
/// can hold.
fn naive_upper_bound(bucket: usize) -> u64 {
    if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << (bucket + 1)) - 1
    }
}

#[test]
fn bucket_boundaries_are_exact() {
    assert_eq!(
        LatencyHistogram::bucket_index(0),
        0,
        "zero lands in bucket 0"
    );
    assert_eq!(LatencyHistogram::bucket_index(1), 0);
    assert_eq!(LatencyHistogram::bucket_index(2), 1);
    assert_eq!(LatencyHistogram::bucket_index(3), 1);
    assert_eq!(LatencyHistogram::bucket_index(4), 2);
    assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
    for exp in 1..64u32 {
        let pow = 1u64 << exp;
        assert_eq!(LatencyHistogram::bucket_index(pow), exp as usize);
        assert_eq!(LatencyHistogram::bucket_index(pow - 1), exp as usize - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every reading lands in a bucket that actually brackets it.
    #[test]
    fn bucket_index_brackets_every_reading(exp in 0u32..64, offset in 0u64..1024) {
        let n = (1u64 << exp).saturating_add(offset);
        let b = LatencyHistogram::bucket_index(n);
        prop_assert!(n <= naive_upper_bound(b), "{n} above bucket {b}'s bound");
        if b > 0 {
            prop_assert!(n >= 1u64 << b, "{n} below bucket {b}'s floor");
        }
    }

    /// Merging two shards' histograms is exact: identical to having
    /// recorded every reading into one histogram.
    #[test]
    fn merge_is_exact(
        a in prop::collection::vec(0u64..u64::MAX, 0..200),
        b in prop::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let mut ha = LatencyHistogram::default();
        let mut hb = LatencyHistogram::default();
        let mut reference = LatencyHistogram::default();
        for &x in &a {
            ha.record(x);
            reference.record(x);
        }
        for &x in &b {
            hb.record(x);
            reference.record(x);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.counts(), reference.counts());
        prop_assert_eq!(ha.count(), reference.count());
        prop_assert_eq!(ha.sum_ns(), reference.sum_ns());
    }

    /// The Prometheus cumulative-bucket conversion agrees with counting
    /// the samples directly.
    #[test]
    fn cumulative_matches_naive_reference(
        samples in prop::collection::vec(0u64..u64::MAX, 0..300),
    ) {
        let mut h = LatencyHistogram::default();
        for &s in &samples {
            h.record(s);
        }
        let cumulative = h.cumulative();
        prop_assert_eq!(cumulative.len(), 64);
        for (bucket, &(bound, cum)) in cumulative.iter().enumerate() {
            prop_assert_eq!(bound, naive_upper_bound(bucket));
            let naive = samples
                .iter()
                .filter(|&&s| LatencyHistogram::bucket_index(s) <= bucket)
                .count() as u64;
            prop_assert_eq!(cum, naive, "bucket {}", bucket);
        }
        // The +Inf bucket holds everything.
        prop_assert_eq!(cumulative[63].1, samples.len() as u64);
    }
}

/// Parses one `name{labels} value` exposition sample line.
fn sample_line(line: &str) -> Option<(&str, f64)> {
    let (metric, value) = line.rsplit_once(' ')?;
    Some((metric, value.parse().ok()?))
}

#[test]
fn prometheus_body_is_well_formed() {
    let mut latency = LatencyHistogram::default();
    for ns in [100, 1_000, 1_000, 50_000, 2_000_000, 40_000_000] {
        latency.record(ns);
    }
    let shards = [
        PromShard {
            shard: 0,
            requests: 6,
            latency,
        },
        PromShard {
            shard: 1,
            requests: 0,
            latency: LatencyHistogram::default(),
        },
    ];
    let body = prometheus_body(12.5, 2, &shards, 3);

    // Every line is a HELP/TYPE comment or a parseable sample.
    let mut samples = 0usize;
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "unexpected comment: {line}"
            );
            continue;
        }
        let (metric, _value) = sample_line(line).unwrap_or_else(|| panic!("bad sample: {line}"));
        assert!(
            metric.starts_with("cosched_"),
            "unprefixed metric: {metric}"
        );
        samples += 1;
    }
    assert!(samples > 0);

    // Shard 0's histogram: 64 nondecreasing `le` buckets ending at +Inf
    // with the total count, and a matching `_count` sample.
    let bucket_values: Vec<f64> = body
        .lines()
        .filter(|l| {
            l.starts_with("cosched_request_latency_seconds_bucket") && l.contains("shard=\"0\"")
        })
        .map(|l| sample_line(l).expect("bucket line").1)
        .collect();
    assert_eq!(bucket_values.len(), 64);
    for pair in bucket_values.windows(2) {
        assert!(pair[0] <= pair[1], "cumulative buckets must not decrease");
    }
    assert_eq!(*bucket_values.last().unwrap(), 6.0);
    let inf_line = body
        .lines()
        .find(|l| l.contains("le=\"+Inf\"") && l.contains("shard=\"0\""))
        .expect("+Inf bucket");
    assert_eq!(sample_line(inf_line).unwrap().1, 6.0);
    let count_line = body
        .lines()
        .find(|l| {
            l.starts_with("cosched_request_latency_seconds_count") && l.contains("shard=\"0\"")
        })
        .expect("_count sample");
    assert_eq!(sample_line(count_line).unwrap().1, 6.0);
    assert!(body.contains("cosched_trace_dropped_total 3"));
    assert!(body.contains("cosched_workers 2"));
}

/// The dispatch-latency histogram survives `--restore`: a recovered
/// shard's count continues from the pre-crash total (snapshot base plus
/// replayed tail) instead of restarting at zero.
#[test]
fn latency_histogram_survives_restore() {
    let dir = std::env::temp_dir().join(format!("cosched-obs-restore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut state = ServeState::with_session(Session::with_id_stride(0, 1));
    let writer = WalWriter::create(
        &dir,
        0,
        1,
        Durability::Log,
        2, // rotate every 2 records: the base-carry path is exercised
        0,
        state.session(),
        0,
        &LatencyHistogram::default(),
        0,
    )
    .expect("wal create");
    state.attach_wal(writer);

    let ops = [
        r#"{"op":"create","apps":[{"name":"A","work":1e10,"seq_fraction":0.1,"access_freq":0.5,"miss_rate_ref":1e-3},{"name":"B","work":2e10,"seq_fraction":0.05,"access_freq":0.6,"miss_rate_ref":2e-3}]}"#,
        r#"{"op":"solve","id":0,"seed":1}"#,
        r#"{"op":"mutate","id":0,"action":"remove_app","index":1}"#,
        r#"{"op":"solve","id":0,"seed":2}"#,
        r#"{"op":"solve","id":0,"seed":3}"#,
    ];
    for op in ops {
        let response = handle_line(&mut state, op);
        assert!(response.contains("\"ok\":true"), "{op} answered {response}");
        state.wal_commit();
        state.wal_maybe_snapshot();
    }
    let live = state.latency_snapshot().expect("live histogram");
    assert_eq!(live.count(), ops.len() as u64);
    drop(state);

    let recovered = recover_shard(&dir, 0, 1, "DominantMinRatio", 0xC05).expect("recover");
    let restored = recovered
        .state
        .latency_snapshot()
        .expect("restored histogram");
    assert_eq!(
        restored.count(),
        ops.len() as u64,
        "restored histogram must continue the pre-crash count"
    );
    assert!(restored.sum_ns() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With tracing ON the smoke script still answers byte-identically
/// between the single-worker and the 4-shard server (all responses but
/// the per-shard `metrics` row), and run-to-run — recording spans must
/// never perturb results.
#[test]
fn tracing_enabled_preserves_response_bytes() {
    let _gate = OBS_GATE.lock().expect("obs gate");
    obs::set_enabled(true);
    let script = smoke_script();
    let run = |workers: usize| -> Vec<String> {
        let (addr, handle) = spawn_server_with(|config| config.workers = workers);
        let responses = client_exchange(addr, &script).expect("loopback exchange");
        handle.join().expect("server thread").expect("server run");
        responses
    };
    let single = run(1);
    let single_again = run(1);
    let sharded = run(4);
    obs::set_enabled(false);
    let _ = obs::drain();

    let masked = |lines: &[String]| -> Vec<String> {
        lines.iter().map(|l| mask_reactor_wakeups(l)).collect()
    };
    assert_eq!(
        masked(&single),
        masked(&single_again),
        "tracing on: same script, same bytes, run to run"
    );
    for (k, (a, b)) in single.iter().zip(&sharded).enumerate() {
        let is_metrics = k == 8; // per-shard rows differ by design
        if !is_metrics {
            assert_eq!(a, b, "response {k} differs between 1 and 4 workers");
        }
    }
}

/// The `trace` op: drains the addressed shard's ring buffer, returning
/// the span events recorded there — and the `--trace` echo tags every
/// shard-routed response with its connection-level request id.
#[test]
fn trace_op_drains_the_addressed_shard() {
    let _gate = OBS_GATE.lock().expect("obs gate");
    obs::set_enabled(true);
    let _ = obs::drain(); // drop spans left over from other activity

    let (addr, handle) = spawn_server_with(|config| {
        config.workers = 2;
        config.trace = true;
    });
    let script = vec![
        r#"{"op":"create","apps":[{"name":"A","work":1e10,"seq_fraction":0.1,"access_freq":0.5,"miss_rate_ref":1e-3},{"name":"B","work":2e10,"seq_fraction":0.05,"access_freq":0.6,"miss_rate_ref":2e-3}]}"#.to_string(),
        r#"{"op":"solve","id":0,"seed":7}"#.to_string(),
        r#"{"op":"trace"}"#.to_string(),
        r#"{"op":"trace","shard":1}"#.to_string(),
        r#"{"op":"shutdown"}"#.to_string(),
    ];
    let responses = client_exchange(addr, &script).expect("loopback exchange");
    handle.join().expect("server thread").expect("server run");
    obs::set_enabled(false);
    let _ = obs::drain();

    // The first round-robin create lands on shard 0, as does its solve.
    for (k, response) in responses[..2].iter().enumerate() {
        let v = Json::parse(response).expect("parse");
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        assert_eq!(
            v.get("trace_id").and_then(Json::as_u64),
            Some(k as u64),
            "response {k} must echo its request id: {response}"
        );
    }

    let shard0 = Json::parse(&responses[2]).expect("trace response");
    assert_eq!(shard0.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(shard0.get("shard").and_then(Json::as_u64), Some(0));
    assert_eq!(shard0.get("enabled").and_then(Json::as_bool), Some(true));
    let events = shard0
        .get("events")
        .and_then(Json::as_array)
        .expect("events array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.contains(&"op_create") && names.contains(&"op_solve"),
        "shard 0's ring should hold the create and solve spans, saw {names:?}"
    );
    for event in events {
        let name = event.get("name").and_then(Json::as_str).unwrap_or("");
        if name == "op_create" {
            assert_eq!(event.get("trace_id").and_then(Json::as_u64), Some(0));
        }
        if name == "op_solve" {
            assert_eq!(event.get("trace_id").and_then(Json::as_u64), Some(1));
        }
    }

    // Shard 1 served nothing: its ring is empty (but the op still
    // answers from the right worker thread).
    let shard1 = Json::parse(&responses[3]).expect("trace response");
    assert_eq!(shard1.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(shard1.get("shard").and_then(Json::as_u64), Some(1));
    let empty = shard1
        .get("events")
        .and_then(Json::as_array)
        .expect("events array");
    assert!(
        empty.is_empty(),
        "shard 1 handled no requests, saw {} events",
        empty.len()
    );
}

/// The disabled path records nothing and drops nothing — the golden
/// suites run in this state, so it must stay inert.
#[test]
fn disabled_tracing_is_inert_through_the_serve_stack() {
    let _gate = OBS_GATE.lock().expect("obs gate");
    obs::set_enabled(false);
    let _ = obs::drain();
    let mut state = ServeState::with_session(Session::new());
    let response = handle_line(
        &mut state,
        r#"{"op":"create","apps":[{"name":"A","work":1e10,"seq_fraction":0.1,"access_freq":0.5,"miss_rate_ref":1e-3},{"name":"B","work":2e10,"seq_fraction":0.05,"access_freq":0.6,"miss_rate_ref":2e-3}]}"#,
    );
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(
        !response.contains("trace_id"),
        "without --trace the wire stays untagged: {response}"
    );
    let chunk = obs::drain();
    assert!(chunk.events.is_empty(), "disabled tracing recorded spans");
    assert_eq!(chunk.dropped, 0);
}
