//! Property tests for the dynamic-cluster building blocks: the
//! [`coschedule::cluster::EventHeap`] ordering contract and the
//! [`workloads::arrivals`] rate-profile samplers.
//!
//! The properties pin exactly what the closed-loop simulation relies on:
//! pops come out in a deterministic total order (time, then insertion
//! sequence), same-seed sampling replays byte-identically, thinning never
//! manufactures arrivals beyond its constant-rate envelope, and every
//! arrival lands strictly inside the requested horizon.

use coschedule::cluster::{ClusterSim, EventHeap, JobSpec};
use coschedule::model::Platform;
use proptest::prelude::*;
use workloads::arrivals::{jobs_from_arrivals, sample_arrivals, RateProfile};
use workloads::npb::npb6;

/// A small but shape-diverse rate profile: constant, sorted piecewise
/// steps, or a sinusoidal burst cycle (`kind` selects the family; the
/// parameter tuple is reinterpreted per family).
fn arb_profile() -> impl Strategy<Value = RateProfile> {
    (
        0u8..3,
        (0.1f64..5.0, 0.0f64..3.0, 0.5f64..5.0),
        proptest::collection::vec((0.0f64..10.0, 0.0f64..5.0), 1..5),
    )
        .prop_map(|(kind, (a, b, c), mut steps)| match kind {
            0 => RateProfile::Constant { rate: a },
            1 => {
                steps.sort_by(|x, y| x.0.total_cmp(&y.0));
                RateProfile::Piecewise { steps }
            }
            _ => RateProfile::Sinusoidal {
                base: a,
                amplitude: b,
                period: c,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops drain in nondecreasing time order, and equal-time events keep
    /// their insertion order (the sequence number breaks the tie) — the
    /// total order that makes a simulation with simultaneous events
    /// deterministic.
    #[test]
    fn heap_pops_in_time_then_insertion_order(
        times in proptest::collection::vec(0.0f64..100.0, 1..50),
        coarse in proptest::collection::vec(0u8..4, 1..50),
    ) {
        // Mix fine-grained times with heavily-colliding coarse ones so
        // ties actually occur.
        let mut heap = EventHeap::new();
        let mut expected: Vec<(f64, u64)> = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let t = if i < coarse.len() { coarse[i] as f64 } else { *t };
            let seq = heap.push(t, i);
            expected.push((t, seq));
        }
        prop_assert_eq!(heap.len(), expected.len());
        // The reference order: stable sort by time — insertion (= seq)
        // order survives within a tie.
        expected.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut popped = Vec::new();
        while let Some((t, seq, _payload)) = heap.pop() {
            popped.push((t, seq));
        }
        prop_assert!(heap.is_empty());
        prop_assert_eq!(heap.pop(), None);
        prop_assert_eq!(popped, expected);
    }

    /// Same seed, same profile ⇒ bit-identical arrival stream; and the
    /// stream is strictly increasing inside `[0, horizon)`.
    #[test]
    fn arrivals_replay_identically_and_stay_in_the_horizon(
        profile in arb_profile(),
        horizon in 0.5f64..20.0,
        seed in 0u64..1_000,
    ) {
        let a = sample_arrivals(&profile, horizon, seed);
        let b = sample_arrivals(&profile, horizon, seed);
        let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a), bits(&b));
        for pair in a.windows(2) {
            prop_assert!(pair[0] < pair[1], "arrivals must strictly increase");
        }
        for &t in &a {
            prop_assert!((0.0..horizon).contains(&t), "{t} outside [0, {horizon})");
        }
    }

    /// Thinning (inhomogeneous sampling) only ever *rejects* candidates
    /// of the constant-rate envelope process: the thinned stream is a
    /// subset of the same-seed envelope stream — never more arrivals,
    /// never an invented time.
    #[test]
    fn thinning_never_exceeds_its_envelope(
        profile in arb_profile(),
        horizon in 0.5f64..20.0,
        seed in 0u64..1_000,
    ) {
        let thinned = sample_arrivals(&profile, horizon, seed);
        let envelope_rate = match &profile {
            RateProfile::Constant { rate } => *rate,
            RateProfile::Piecewise { steps } => steps
                .iter()
                .map(|&(_, r)| r)
                .fold(0.0f64, f64::max),
            RateProfile::Sinusoidal { base, amplitude, .. } => base + amplitude,
        };
        let envelope = sample_arrivals(
            &RateProfile::Constant { rate: envelope_rate },
            horizon,
            seed,
        );
        prop_assert!(thinned.len() <= envelope.len());
        let envelope_bits: Vec<u64> = envelope.iter().map(|t| t.to_bits()).collect();
        for t in &thinned {
            prop_assert!(
                envelope_bits.contains(&t.to_bits()),
                "thinned arrival {t} is not an envelope candidate"
            );
        }
    }

    /// Job generation is a pure function of (arrivals, seed): replaying
    /// yields identical jobs, one per arrival, in arrival order.
    #[test]
    fn job_streams_replay_identically(
        count in 0usize..12,
        seed in 0u64..1_000,
    ) {
        let arrivals: Vec<f64> = (0..count).map(|i| 0.5 * i as f64).collect();
        let table = npb6(&[0.05]);
        let a = jobs_from_arrivals(&arrivals, &table, seed);
        let b = jobs_from_arrivals(&arrivals, &table, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), arrivals.len());
        for (job, &t) in a.iter().zip(&arrivals) {
            prop_assert_eq!(job.arrival.to_bits(), t.to_bits());
            prop_assert!(job.app.work > 0.0);
        }
    }
}

/// The simulator's edge cases: no jobs is a clean no-op outcome, and one
/// job completes with a response no shorter than physically possible.
#[test]
fn simulator_handles_empty_and_single_job_streams() {
    let sim = ClusterSim::new(Platform::taihulight(), "DominantMinRatio", 7);
    let empty = sim.run(&[]).unwrap();
    assert_eq!(empty.metrics.jobs, 0);
    assert_eq!(empty.metrics.completed, 0);
    assert_eq!(empty.metrics.makespan, 0.0);
    assert_eq!(empty.metrics.utilization, 0.0);
    assert!(empty.ops.is_empty());

    let app = npb6(&[0.05]).remove(0);
    let single = sim
        .run(&[JobSpec {
            arrival: 1.0,
            app: app.clone(),
        }])
        .unwrap();
    assert_eq!(single.metrics.completed, 1);
    assert_eq!(single.jobs.len(), 1);
    let record = &single.jobs[0];
    assert!(record.completed());
    assert!(record.response() > 0.0);
    assert!(single.metrics.makespan >= 1.0 + record.response() - 1e-9);
}
