//! Property and integration tests for the opt-in binary frame codec:
//! round-trips of arbitrary unicode payloads (torn at random read
//! boundaries), max-length frames, negotiation fallback when the hello is
//! malformed, and byte-identity of framed responses against the JSON
//! reference protocol over a real loopback server.

mod common;

use common::{shutdown, spawn_server};
use experiments::serve::frame::{
    encode_frame, hello_line, negotiate, FrameDecoder, Negotiation, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use experiments::serve::{client_exchange, client_exchange_framed, smoke_script, FrameMode};
use minijson::Json;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Arbitrary unicode payload: random scalar values (surrogates are
/// filtered by `char::from_u32`), so multi-byte UTF-8 crosses every torn
/// read boundary the chunking property picks.
fn arb_payload() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x11_0000u32, 0..200)
        .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_round_trip_torn_at_random_boundaries(
        payloads in proptest::collection::vec(arb_payload(), 1..8),
        chunk_seed in 1usize..97,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut wire).unwrap();
        }
        // Feed the stream in pseudo-random chunk sizes: every frame is
        // torn at data-dependent boundaries, headers included.
        let mut decoder = FrameDecoder::default();
        let mut decoded = Vec::new();
        let mut at = 0usize;
        let mut step = chunk_seed;
        while at < wire.len() {
            let take = (step % 13 + 1).min(wire.len() - at);
            decoder.push(&wire[at..at + take]);
            at += take;
            step = step.wrapping_mul(31).wrapping_add(7);
            while let Some(payload) = decoder.next_payload().unwrap() {
                decoded.push(payload);
            }
        }
        prop_assert_eq!(decoded, payloads);
        prop_assert!(decoder.is_empty(), "no bytes may linger after the last frame");
    }

    #[test]
    fn partial_frames_never_yield_until_complete(
        payload in arb_payload(),
        cut_num in 0u32..1000,
    ) {
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire).unwrap();
        // Cut the wire bytes at a proportional point strictly before the
        // end: the decoder must hold the torn frame, yielding nothing.
        let cut = (cut_num as usize * (wire.len() - 1)) / 1000;
        let mut decoder = FrameDecoder::default();
        decoder.push(&wire[..cut]);
        prop_assert_eq!(decoder.next_payload().unwrap(), None);
        // The remainder completes it.
        decoder.push(&wire[cut..]);
        prop_assert_eq!(decoder.next_payload().unwrap(), Some(payload));
        prop_assert!(decoder.is_empty());
    }
}

#[test]
fn max_length_frame_round_trips_and_oversize_is_rejected() {
    // Exactly MAX_FRAME_LEN bytes of payload round-trips…
    let payload = "x".repeat(MAX_FRAME_LEN);
    let mut wire = Vec::new();
    encode_frame(&payload, &mut wire).unwrap();
    assert_eq!(wire.len(), FRAME_HEADER_LEN + MAX_FRAME_LEN);
    let mut decoder = FrameDecoder::default();
    decoder.push(&wire);
    assert_eq!(decoder.next_payload().unwrap(), Some(payload));

    // …one byte more is refused by the encoder, and a decoder seeing such
    // a header errors instead of buffering 16 MiB of garbage.
    let oversize = "x".repeat(MAX_FRAME_LEN + 1);
    let mut out = Vec::new();
    assert!(encode_frame(&oversize, &mut out).is_err());
    let mut decoder = FrameDecoder::default();
    let bad_header = u32::try_from(MAX_FRAME_LEN + 1).unwrap().to_le_bytes();
    decoder.push(&bad_header);
    assert!(decoder.next_payload().is_err());
}

#[test]
fn malformed_hello_falls_back_to_json() {
    // A hello asking for an unknown codec gets an error line, and the
    // connection then keeps speaking plain JSON — the fallback contract.
    for workers in [1, 4] {
        let (addr, handle) = spawn_server(workers);
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);

        writer
            .write_all(b"{\"op\":\"hello\",\"frame\":\"msgpack\"}\n")
            .expect("send malformed hello");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reject");
        let reject = Json::parse(&line).expect("parseable reject");
        assert_eq!(
            reject.get("ok").and_then(Json::as_bool),
            Some(false),
            "workers={workers}: {line}"
        );

        // Still JSON, still served.
        writer
            .write_all(b"{\"op\":\"solvers\"}\n")
            .expect("send request");
        line.clear();
        reader.read_line(&mut line).expect("read response");
        let v = Json::parse(&line).expect("parseable response");
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "workers={workers}: connection poisoned after rejected hello: {line}"
        );

        drop((writer, reader));
        shutdown(addr, handle);
    }
}

#[test]
fn hello_negotiation_is_transport_level_not_an_op() {
    // The hello must not be dispatched: after a binary handshake, a lone
    // `stats` request gets exactly one response — the ack was consumed by
    // the handshake, the hello left no trace in any counter — and the
    // response is byte-identical to what a plain JSON connection answers.
    let (addr, handle) = spawn_server(1);
    let script = [r#"{"op":"stats"}"#.to_string()];
    let framed = client_exchange_framed(addr, &script, FrameMode::Binary).expect("framed stats");
    let json = client_exchange(addr, &script).expect("json stats");
    assert_eq!(framed.len(), 1, "hello must not produce an extra response");
    assert_eq!(
        framed, json,
        "a hello-prefixed connection must answer identically to a plain one"
    );
    let v = Json::parse(&framed[0]).expect("parseable stats");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        v.get("solves").and_then(Json::as_u64),
        Some(0),
        "the hello must not touch any counter: {}",
        framed[0]
    );
    shutdown(addr, handle);
}

#[test]
fn binary_frames_decode_to_the_exact_json_reference_bytes() {
    // The byte-identity oracle: the same script over the binary codec
    // must decode to exactly the payloads the JSON protocol answers —
    // at both the sequential and the reactor front-end.
    let script = smoke_script();
    for workers in [1, 4] {
        let (addr, handle) = spawn_server(workers);
        let json = client_exchange(addr, &script).expect("json exchange");
        handle.join().expect("server thread").expect("server run");

        let (addr, handle) = spawn_server(workers);
        let framed =
            client_exchange_framed(addr, &script, FrameMode::Binary).expect("framed exchange");
        handle.join().expect("server thread").expect("server run");

        for ((request, j), f) in script.iter().zip(&json).zip(&framed) {
            let is_metrics = Json::parse(request)
                .unwrap()
                .get("op")
                .and_then(Json::as_str)
                == Some("metrics");
            if is_metrics {
                // The net counters legitimately differ: framing changes
                // the wire byte counts. The response must still be ok.
                assert_eq!(
                    Json::parse(f).unwrap().get("ok").and_then(Json::as_bool),
                    Some(true),
                    "workers={workers}: {f}"
                );
                continue;
            }
            assert_eq!(
                j, f,
                "workers={workers}: binary frames diverged from the JSON reference on {request}"
            );
        }
    }
}

#[test]
fn negotiate_classifies_without_consuming_requests() {
    // Unit-level pin of the classification contract the servers rely on.
    assert_eq!(
        negotiate(&hello_line(FrameMode::Binary)),
        Negotiation::Hello(FrameMode::Binary)
    );
    assert_eq!(negotiate(r#"{"op":"list"}"#), Negotiation::NotHello);
    assert_eq!(negotiate("not json"), Negotiation::NotHello);
    assert!(matches!(
        negotiate(r#"{"op":"hello","frame":"gzip"}"#),
        Negotiation::Reject(_)
    ));
}
