//! Integration suite for the `coschedule::tune` autotuner (ISSUE-5):
//!
//! * **determinism** — same seed + trace ⇒ the same selections, solve for
//!   solve; serial == parallel portfolio fan-out;
//! * **golden convergence** — on the canned NPB-6 mutation/solve trace,
//!   `"auto"` converges to the known Portfolio winner (DominantRefined)
//!   and keeps answering with the portfolio-best makespan bit for bit,
//!   while running ≥ 2× fewer member solves;
//! * **property** — for arbitrary seeds, a committed-phase solve's
//!   makespan never exceeds the winner the full Portfolio would have
//!   picked on the same instance and seed.

use coschedule::model::Platform;
use coschedule::solver::{self, Instance, SolveCtx, Solver};
use coschedule::tune::{Auto, TuneConfig};
use experiments::tune::{compare, replay, Replay, TraceSpec};
use proptest::prelude::*;
use workloads::npb::npb6;

/// The decision-relevant projection of a replay (wall times excluded —
/// they vary run to run by design).
fn selections(r: &Replay) -> Vec<(u64, bool, u64)> {
    r.steps
        .iter()
        .map(|s| (s.makespan.to_bits(), s.explored, s.member_solves))
        .collect()
}

#[test]
fn same_seed_and_trace_replay_the_same_selections() {
    let spec = TraceSpec {
        solves: 40,
        seed: 0xAB,
        window: 0,
    };
    let a = replay("auto", &spec).unwrap();
    let b = replay("auto", &spec).unwrap();
    assert_eq!(selections(&a), selections(&b));
    assert_eq!(a.tuner_stats(), b.tuner_stats());
    let leaders = |r: &Replay| -> Vec<(String, usize)> {
        r.session
            .tuner()
            .table()
            .iter()
            .map(|bucket| (bucket.signature.to_string(), bucket.leader))
            .collect()
    };
    assert_eq!(leaders(&a), leaders(&b), "learned leaders must replay too");
}

#[test]
fn serial_and_parallel_tuners_make_the_same_selections() {
    // The portfolio fan-out inside explore rounds (and nothing else) uses
    // ctx.threads; selections and outcomes must not depend on it.
    let instance = Instance::new(npb6(&[0.05]), Platform::taihulight()).unwrap();
    let run = |threads: usize| -> (Vec<u64>, coschedule::tune::TunerStats) {
        let auto = Auto::with_config(TuneConfig {
            explore_rounds: 3,
            challenger_period: 2,
            window: 0,
        });
        let makespans = (0..10u64)
            .map(|step| {
                let mut ctx = SolveCtx::seeded(step ^ 0x5EED).with_threads(threads);
                auto.solve(&instance, &mut ctx).unwrap().makespan.to_bits()
            })
            .collect();
        (makespans, auto.tuner_stats())
    };
    assert_eq!(run(1), run(4), "threads changed the tuner's behaviour");
}

#[test]
fn golden_npb6_trace_converges_to_the_portfolio_winner() {
    let spec = TraceSpec {
        solves: 48,
        seed: 0xC05,
        window: 0,
    };
    let comparison = compare(&spec).unwrap();

    // The learned leader is the known NPB-6 winner: the refinement
    // descent (it post-optimises the best dominant start, so no other
    // member can beat it on this workload).
    let table = comparison.auto.session.tuner().table();
    assert_eq!(table.len(), 1, "the canned trace stays in one bucket");
    let bucket = &table[0];
    assert_eq!(
        bucket.members[bucket.leader].0, "DominantRefined",
        "auto must learn the known Portfolio winner"
    );
    let (_, leader_obs) = &bucket.members[bucket.leader];
    assert_eq!(
        leader_obs.wins, leader_obs.observations,
        "the leader won every comparative round it appeared in"
    );
    assert_eq!(leader_obs.mean_ratio(), 1.0);

    // After warm-up, every committed solve answers with the same makespan
    // the full Portfolio finds — bit for bit — at ≥ 2× fewer member
    // solves (the ISSUE-5 acceptance bar; the canned trace clears it with
    // margin).
    assert!(comparison.committed_steps >= 40);
    assert_eq!(comparison.committed_matches, comparison.committed_steps);
    assert!(
        comparison.solve_reduction() >= 2.0,
        "only {:.2}× fewer member solves",
        comparison.solve_reduction()
    );

    // The explore prefix is the full portfolio, so those steps match too:
    // the whole trace is makespan-identical to always-Portfolio.
    for (i, (a, p)) in comparison
        .auto
        .steps
        .iter()
        .zip(&comparison.portfolio.steps)
        .enumerate()
    {
        assert_eq!(
            a.makespan.to_bits(),
            p.makespan.to_bits(),
            "step {i} diverged from the portfolio"
        );
    }
}

#[test]
fn session_auto_survives_mutations_and_matches_registry_auto() {
    // The session's shared tuner keys off the *patched* signature: after
    // warm-up on the mutated instance stream it must still answer every
    // solve without re-exploring, and a second identical session must
    // reproduce it (the tuner state is session-local, not global).
    let spec = TraceSpec {
        solves: 24,
        seed: 7,
        window: 0,
    };
    let a = replay("auto", &spec).unwrap();
    assert!(
        a.steps[a.steps.len() - 4..].iter().all(|s| !s.explored),
        "the trace tail must be committed (history survived the churn)"
    );
    let b = replay("auto", &spec).unwrap();
    assert_eq!(selections(&a), selections(&b));
}

#[test]
fn registry_auto_is_a_fresh_tuner_each_lookup() {
    let instance = Instance::new(npb6(&[0.05]), Platform::taihulight()).unwrap();
    let first = solver::by_name("auto").unwrap();
    let again = solver::by_name("auto").unwrap();
    // Both fresh: identical first-solve behaviour (the full portfolio).
    let a = first.solve(&instance, &mut SolveCtx::seeded(3)).unwrap();
    let b = again.solve(&instance, &mut SolveCtx::seeded(3)).unwrap();
    assert_eq!(a, b);
    assert!(first.is_randomized());
    assert_eq!(first.name(), "auto");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary seeds: a committed-phase solve never answers a
    /// makespan worse than the winner the full Portfolio picks on the
    /// same instance and seed. (It cannot be better either — the members
    /// are a subset — so this pins equality; the assertion states the
    /// ISSUE-5 property as the one-sided bound.)
    #[test]
    fn committed_phase_never_exceeds_the_portfolio_winner(seed in 0u64..1_000_000) {
        let spec = TraceSpec { solves: 20, seed, window: 0 };
        let comparison = compare(&spec).unwrap();
        for (i, (a, p)) in comparison
            .auto
            .steps
            .iter()
            .zip(&comparison.portfolio.steps)
            .enumerate()
        {
            if !a.explored {
                prop_assert!(
                    a.makespan <= p.makespan,
                    "seed {seed} step {i}: committed makespan {} exceeds the \
                     portfolio winner {}",
                    a.makespan,
                    p.makespan
                );
            }
        }
        // And the tuner really did commit within the trace.
        prop_assert!(comparison.committed_steps > 0);
    }
}
