//! Property-based integration tests of the paper's theory, across crates:
//! workload generators feed the core solvers, and the §4 results are
//! checked as executable invariants.

use coschedule::algo::{branch_and_bound, BnbConfig, BuildOrder, Choice, Strategy};
use coschedule::model::{seq_cost, ExecModel, Platform, Schedule};
use coschedule::solver::{Instance, SolveCtx, Solver as _};
use coschedule::theory::{
    equal_finish_split, equalize, is_dominant, lemma2_proc_split, optimal_cache_fractions,
    Partition,
};
use proptest::prelude::*;
use workloads::rng::seeded_rng;
use workloads::synth::{Dataset, SeqFraction};

fn platform_with_cache(cs_mb: f64) -> Platform {
    Platform::taihulight().with_cache_size(cs_mb * 1e6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 1 structure: the dominant heuristics produce equal-finish
    /// schedules on arbitrary generated instances.
    #[test]
    fn heuristics_produce_equal_finish_schedules(
        seed in 0u64..500,
        n in 2usize..24,
        kind in 0usize..3,
    ) {
        let platform = Platform::taihulight();
        let dataset = Dataset::ALL[kind];
        let mut rng = seeded_rng(seed);
        let apps = dataset.generate(n, SeqFraction::paper_default(), &mut rng);
        let inst = Instance::new(apps.clone(), platform.clone()).unwrap();
        let o = Strategy::dominant(BuildOrder::Forward, Choice::MinRatio)
            .solve(&inst, &mut SolveCtx::seeded(seed))
            .unwrap();
        prop_assert!(o.schedule.is_equal_finish(&apps, &platform, 1e-6));
        prop_assert!((o.schedule.total_procs() - 256.0).abs() < 1e-3);
    }

    /// Lemma 2: for perfectly parallel applications the closed-form
    /// processor split matches the bisection solver.
    #[test]
    fn lemma2_matches_bisection(
        seed in 0u64..500,
        n in 2usize..16,
    ) {
        let platform = Platform::taihulight();
        let mut rng = seeded_rng(seed);
        let apps = Dataset::Random.generate(n, SeqFraction::Zero, &mut rng);
        let cache = vec![1.0 / n as f64; n];
        let closed = lemma2_proc_split(&apps, &platform, &cache);
        let solved = equal_finish_split(&apps, &platform, &cache).unwrap();
        for (a, b) in closed.iter().zip(&solved.procs) {
            prop_assert!((a - b).abs() / a.max(1e-12) < 1e-6, "{a} vs {b}");
        }
    }

    /// Theorem 3 optimality: no pairwise cache transfer inside a dominant
    /// partition improves the Lemma-3 objective.
    #[test]
    fn theorem3_is_locally_optimal(
        seed in 0u64..300,
        n in 2usize..10,
    ) {
        let platform = platform_with_cache(200.0);
        let mut rng = seeded_rng(seed);
        let apps = Dataset::Random.generate(n, SeqFraction::Zero, &mut rng);
        let models = ExecModel::of_all(&apps, &platform);
        let full = Partition::all(n);
        prop_assume!(is_dominant(&models, &full));
        let x = optimal_cache_fractions(&models, &full);
        let objective = |x: &[f64]| -> f64 {
            x.iter().zip(&apps).map(|(&xi, a)| seq_cost(a, &platform, xi)).sum()
        };
        let base = objective(&x);
        let eps = 1e-7;
        for i in 0..n {
            for j in 0..n {
                if i == j { continue; }
                let mut y = x.clone();
                y[i] += eps;
                y[j] -= eps;
                prop_assert!(objective(&y) >= base * (1.0 - 1e-12));
            }
        }
    }

    /// Exact optimum lower-bounds every heuristic (perfectly parallel).
    #[test]
    fn exact_lower_bounds_heuristics(
        seed in 0u64..200,
        n in 2usize..9,
    ) {
        let platform = platform_with_cache(100.0);
        let mut rng = seeded_rng(seed);
        let apps = Dataset::Random.generate(n, SeqFraction::Zero, &mut rng);
        let reference = branch_and_bound(&apps, &platform, &BnbConfig::default()).unwrap();
        prop_assert!(reference.optimal);
        let inst = Instance::new(apps, platform).unwrap();
        for s in Strategy::all_coscheduling() {
            let o = s.solve(&inst, &mut SolveCtx::seeded(seed)).unwrap();
            prop_assert!(
                o.makespan >= reference.makespan * (1.0 - 1e-9),
                "{} beat the optimum: {} < {}",
                s.name(), o.makespan, reference.makespan
            );
        }
    }

    /// Feasibility: every concurrent strategy respects Σp ≤ p, Σx ≤ 1 on
    /// arbitrary instances.
    #[test]
    fn schedules_are_always_feasible(
        seed in 0u64..500,
        n in 1usize..32,
        kind in 0usize..3,
    ) {
        let platform = Platform::taihulight();
        let mut rng = seeded_rng(seed);
        let apps = Dataset::ALL[kind].generate(n, SeqFraction::paper_default(), &mut rng);
        let inst = Instance::new(apps.clone(), platform.clone()).unwrap();
        for s in Strategy::all_coscheduling() {
            let o = s.solve(&inst, &mut SolveCtx::seeded(seed)).unwrap();
            prop_assert!(o.schedule.validate(&apps, &platform).is_ok(), "{}", s.name());
        }
    }

    /// Lemma 1 cross-crate: the ε-exchange process, applied to a skewed
    /// Fair-style schedule of a generated instance, never increases the
    /// makespan and converges to equal finish.
    #[test]
    fn lemma1_exchange_improves_generated_schedules(
        seed in 0u64..300,
        n in 2usize..12,
    ) {
        let platform = Platform::taihulight();
        let mut rng = seeded_rng(seed);
        let apps = Dataset::Random.generate(n, SeqFraction::Zero, &mut rng);
        // Start from Fair's (deliberately unbalanced) processor split.
        let fair = Strategy::Fair
            .solve(
                &Instance::new(apps.clone(), platform.clone()).unwrap(),
                &mut SolveCtx::seeded(seed),
            )
            .unwrap();
        let before = fair.schedule.makespan(&apps, &platform);
        let improved = equalize(&apps, &platform, fair.schedule, 1e-10, 10_000);
        let after = improved.makespan(&apps, &platform);
        prop_assert!(after <= before * (1.0 + 1e-9));
        prop_assert!(improved.is_equal_finish(&apps, &platform, 1e-6));
    }

    /// Makespan consistency: the reported makespan equals the schedule's
    /// evaluated makespan under the model (for concurrent strategies).
    #[test]
    fn reported_makespan_matches_schedule(
        seed in 0u64..300,
        n in 1usize..16,
    ) {
        let platform = Platform::taihulight();
        let mut rng = seeded_rng(seed);
        let apps = Dataset::NpbSynth.generate(n, SeqFraction::paper_default(), &mut rng);
        let inst = Instance::new(apps.clone(), platform.clone()).unwrap();
        for s in Strategy::all_coscheduling() {
            let o = s.solve(&inst, &mut SolveCtx::seeded(seed)).unwrap();
            let evaluated = Schedule::makespan(&o.schedule, &apps, &platform);
            prop_assert!(
                (evaluated - o.makespan).abs() / o.makespan < 1e-6,
                "{}: reported {} vs evaluated {}",
                s.name(), o.makespan, evaluated
            );
        }
    }
}
