//! Property tests for the durability layer: session snapshots must
//! round-trip through `minijson` exactly (bit-exact floats, full-width
//! `u64` seeds, tuner history), and the WAL's length-delimited framing
//! must survive arbitrary payloads and torn tails.
//!
//! These drive a real [`Session`] through randomized op sequences —
//! creates, mutations, solves (including the learning `"auto"` tuner and
//! the memo tier) — then check `snapshot ∘ restore ∘ snapshot` is the
//! identity and that the restored session *behaves* identically on the
//! next request.

use std::sync::atomic::{AtomicUsize, Ordering};

use coschedule::persist::{restore_session_str, snapshot_session_string};
use coschedule::session::{InstanceId, Session};
use experiments::serve::metrics::LatencyHistogram;
use experiments::serve::wal::{read_wal_records, Durability, WalWriter};
use minijson::Json;
use proptest::prelude::*;

/// Solver names exercised by the random traces; `"auto"` makes the tuner
/// history part of every round-trip, the rest exercise the memo tier.
const SOLVERS: [&str; 6] = [
    "auto",
    "DominantMinRatio",
    "DominantRefined",
    "Fair",
    "RandomPart",
    "AllProcCache",
];

/// One randomized session op: `(opcode, a, b)` interpreted by
/// [`build_session`]. Kept as plain integers so the strategy stays a
/// simple tuple and failures print reproducibly.
fn op_strategy() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    prop::collection::vec((0u8..7, 0u64..=u64::MAX, 0u64..=u64::MAX), 1..25)
}

/// Drives a fresh session through `ops`. Every op is made valid by
/// construction (ids come from `list()`, indices are reduced mod the
/// current length), so the trace exercises state, not error paths.
fn build_session(ops: &[(u8, u64, u64)]) -> Session {
    let mut session = Session::new();
    let mut created = 0usize;
    for &(code, a, b) in ops {
        let live: Vec<InstanceId> = session.list().iter().map(|i| i.id).collect();
        if live.is_empty() || code == 0 {
            let mut apps = workloads::npb::npb6(&[0.05]);
            for app in &mut apps {
                app.work *= 1.0 + 0.01 * created as f64;
            }
            session
                .create(apps, coschedule::model::Platform::taihulight())
                .expect("create");
            created += 1;
            continue;
        }
        let id = live[(a % live.len() as u64) as usize];
        match code {
            1 | 2 => {
                let solver = SOLVERS[(b % SOLVERS.len() as u64) as usize];
                session.resolve_by_name(id, solver, b).expect("solve");
                if code == 2 {
                    // Same (revision, solver, seed): the memo tier (or, for
                    // `"auto"`, a second learning observation) answers.
                    session.resolve_by_name(id, solver, b).expect("re-solve");
                }
            }
            3 => {
                let mut handle = session.handle(id).expect("handle");
                let index = (a % handle.len() as u64) as usize;
                let mut app = workloads::npb::npb6(&[0.05]).swap_remove(0);
                app.work *= 1.0 + 1e-14 * (b % 1024) as f64;
                handle.update_app(index, app).expect("update_app");
            }
            4 => {
                let mut app = workloads::npb::npb6(&[0.05]).swap_remove(1);
                app.work *= 1.0 + 1e-14 * (b % 1024) as f64;
                session
                    .handle(id)
                    .expect("handle")
                    .add_app(app)
                    .expect("add_app");
            }
            5 => {
                let mut handle = session.handle(id).expect("handle");
                if handle.len() > 1 {
                    let index = (a % handle.len() as u64) as usize;
                    handle.remove_app(index).expect("remove_app");
                }
            }
            _ => session.close(id).expect("close"),
        }
    }
    session
}

/// A fresh per-case scratch directory under the system temp dir.
fn scratch_dir() -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cosched-persist-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_restore_snapshot_is_the_identity(ops in op_strategy()) {
        let session = build_session(&ops);
        let first = snapshot_session_string(&session);
        let restored = match restore_session_str(&first) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::Fail(format!("restore failed: {e}"))),
        };
        let second = snapshot_session_string(&restored);
        prop_assert_eq!(first, second, "snapshot drifted through a restore");
    }

    #[test]
    fn restored_sessions_answer_the_next_solve_identically(
        ops in op_strategy(),
        pick in 0u64..=u64::MAX,
        seed in 0u64..=u64::MAX,
        which in 0u64..=u64::MAX,
    ) {
        let mut original = build_session(&ops);
        let mut restored =
            restore_session_str(&snapshot_session_string(&original)).expect("restore");
        let live: Vec<InstanceId> = original.list().iter().map(|i| i.id).collect();
        prop_assume!(!live.is_empty());
        let id = live[(pick % live.len() as u64) as usize];
        let solver = SOLVERS[(which % SOLVERS.len() as u64) as usize];
        let a = original.resolve_by_name(id, solver, seed).expect("solve original");
        let b = restored.resolve_by_name(id, solver, seed).expect("solve restored");
        prop_assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "restored session solved {} differently", solver
        );
        // And both sessions' *post-solve* snapshots still agree — stats,
        // memo, warm flags, and tuner learning all advanced in lock-step.
        prop_assert_eq!(
            snapshot_session_string(&original),
            snapshot_session_string(&restored)
        );
    }

    #[test]
    fn finite_floats_round_trip_through_minijson_bit_exactly(bits in 0u64..=u64::MAX) {
        let x = f64::from_bits(bits);
        prop_assume!(x.is_finite());
        let printed = Json::from(x).to_string();
        let back = Json::parse(&printed)
            .expect("printed float must re-parse")
            .as_f64()
            .expect("a float must parse as a number");
        prop_assert_eq!(
            back.to_bits(), x.to_bits(),
            "{} printed as {} but re-read as {}", x, printed, back
        );
    }

    #[test]
    fn exact_window_integers_round_trip_through_as_i64(
        n in -(1i64 << 53)..=(1i64 << 53),
        wide in 0u64..=u64::MAX,
    ) {
        // `as_i64`'s documented contract: exact within ±2^53 (the f64-exact
        // window — all the codec needs for the tuner's log2 buckets), `None`
        // beyond it rather than a silently rounded value.
        let printed = Json::from(n).to_string();
        let back = Json::parse(&printed).expect("re-parse").as_i64();
        prop_assert_eq!(back, Some(n), "{} printed as {}", n, printed);
        let outside = 2f64.powi(53) * (2.0 + (wide % 1000) as f64);
        prop_assert_eq!(Json::Num(outside).as_i64(), None);
        prop_assert_eq!(Json::Num(-outside).as_i64(), None);
    }

    #[test]
    fn full_width_seeds_survive_the_decimal_string_codec(seed in 0u64..=u64::MAX) {
        // Seeds are stored as decimal strings (a JSON number only holds 53
        // bits exactly); the codec is plain format/parse.
        let doc = Json::obj([("seed", Json::from(seed.to_string()))]);
        let text = doc.to_string();
        let read: u64 = Json::parse(&text)
            .expect("re-parse")
            .get("seed")
            .and_then(Json::as_str)
            .expect("seed is a string")
            .parse()
            .expect("seed string is decimal");
        prop_assert_eq!(read, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wal_records_round_trip_whatever_the_payload(
        payloads in prop::collection::vec(
            prop::collection::vec(0u32..0x11_0000, 0..40).prop_map(|points| {
                points
                    .into_iter()
                    .filter_map(char::from_u32) // skips the surrogate gap
                    .collect::<String>()
            }),
            1..12,
        ),
    ) {
        let dir = scratch_dir();
        let session = Session::new();
        let mut writer = WalWriter::create(
            &dir, 0, 1, Durability::Log, 1 << 32, 0, &session, 0, &LatencyHistogram::default(), 0,
        )
        .expect("create writer");
        for payload in &payloads {
            writer.append(payload).expect("append");
        }
        writer.commit().expect("commit");
        drop(writer);
        let read = read_wal_records(&dir.join("shard-0.wal.0.log")).expect("read");
        let ok = read == payloads;
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(ok, "framing corrupted a payload");
    }

    #[test]
    fn torn_tails_drop_only_complete_trailing_records(
        payloads in prop::collection::vec(
            prop::collection::vec(32u32..127, 0..30)
                .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect::<String>()),
            1..10,
        ),
        cut_point in 0u64..=u64::MAX,
    ) {
        let dir = scratch_dir();
        let session = Session::new();
        let mut writer = WalWriter::create(
            &dir, 0, 1, Durability::Log, 1 << 32, 0, &session, 0, &LatencyHistogram::default(), 0,
        )
        .expect("create writer");
        for payload in &payloads {
            writer.append(payload).expect("append");
        }
        writer.commit().expect("commit");
        drop(writer);

        let path = dir.join("shard-0.wal.0.log");
        let bytes = std::fs::read(&path).expect("read back");
        // Truncate somewhere after the magic: every complete frame before
        // the cut must survive, everything at or after it must vanish.
        let cut = 8 + (cut_point % (bytes.len() as u64 - 7)) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("write torn file");

        let mut expected = Vec::new();
        let mut end = 8usize;
        for payload in &payloads {
            end += 8 + payload.len();
            if end > cut {
                break;
            }
            expected.push(payload.clone());
        }
        let read = read_wal_records(&path).expect("torn read is not an error");
        let ok = read == expected;
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(
            read.len(), expected.len(),
            "cut at {} of {} kept the wrong records", cut, bytes.len()
        );
        prop_assert!(ok, "a surviving record was altered by the tear");
    }
}
